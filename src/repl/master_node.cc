#include "repl/master_node.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "repl/slave_node.h"
#include "cloud/instance.h"
#include "common/result.h"
#include "db/binlog.h"
#include "db/database.h"
#include "net/network.h"
#include "repl/cost_model.h"
#include "sim/simulation.h"

namespace clouddb::repl {

MasterNode::MasterNode(sim::Simulation* sim, net::Network* network,
                       cloud::Instance* instance, CostModel cost_model)
    : DbNode(sim, network, instance, std::move(cost_model),
             /*enable_binlog=*/true) {
  database_->binlog().SetAppendListener(
      [this](const db::BinlogEvent& event) { OnBinlogAppend(event); });
  flush_timer_.Bind(sim_, [this] { FlushBatch(); });
  RegisterMasterMetrics();
}

MasterNode::MasterNode(sim::Simulation* sim, net::Network* network,
                       cloud::Instance* instance, CostModel cost_model,
                       std::unique_ptr<db::Database> adopted)
    : DbNode(sim, network, instance, std::move(cost_model),
             std::move(adopted), /*enable_binlog=*/true) {
  database_->binlog().SetAppendListener(
      [this](const db::BinlogEvent& event) { OnBinlogAppend(event); });
  flush_timer_.Bind(sim_, [this] { FlushBatch(); });
  RegisterMasterMetrics();
}

void MasterNode::RegisterMasterMetrics() {
  metrics_.AddProbe("repl.master.binlog_size", [this] {
    return database_ == nullptr ? 0.0 : static_cast<double>(binlog_size());
  });
  metrics_.AddProbe("repl.master.events_pushed", [this] {
    return static_cast<double>(events_pushed_);
  });
  metrics_.AddProbe("repl.master.attached_slaves", [this] {
    return static_cast<double>(slaves_.size());
  });
  // Apply backlog on the master side: writes committed but still holding
  // their client response for slave acks (synchronous mode only).
  metrics_.AddProbe("repl.master.sync_waiters", [this] {
    return static_cast<double>(sync_waiters_.size());
  });
  batches_counter_ = metrics_.AddCounter("repl.binlog.batches");
  events_per_batch_ = metrics_.AddEwma("repl.binlog.events_per_batch");
}

void MasterNode::SetShipOptions(const ShipOptions& options) {
  FlushBatch();
  ship_ = options;
}

void MasterNode::AttachSlave(SlaveNode* slave) {
  slaves_.push_back(slave);
  slave->SetMaster(this);
  // A freshly attached slave only receives events from here on; starting
  // its cumulative ack position at the current binlog tail keeps it from
  // ever releasing waiters for events it never saw.
  acked_through_.insert_or_assign(slave->node_id(), binlog_size() - 1);
}

void MasterNode::DetachSlave(SlaveNode* slave) {
  auto it = std::find(slaves_.begin(), slaves_.end(), slave);
  if (it == slaves_.end()) return;
  slaves_.erase(it);
  acked_through_.erase(slave->node_id());
  // Release any synchronous waiter that was still counting on this slave;
  // otherwise a scale-in during a sync write would strand the client.
  for (auto w = sync_waiters_.begin(); w != sync_waiters_.end();) {
    if (--w->remaining == 0) {
      QueryCallback done = std::move(w->done);
      Result<db::ExecResult> result = std::move(w->result);
      w = sync_waiters_.erase(w);
      done(std::move(result));
    } else {
      ++w;
    }
  }
}

void MasterNode::ExecuteAndRespond(const std::string& sql,
                                   QueryCallback done) {
  int64_t before = database_->binlog().size();
  Result<db::ExecResult> result = ExecuteNow(sql);
  int64_t after = database_->binlog().size();
  // Asynchronous replication (the default): respond as soon as the master
  // commits. Synchronous: hold the response until all slaves ack the event.
  if (!synchronous_ || slaves_.empty() || after == before || !result.ok()) {
    done(std::move(result));
    return;
  }
  sync_waiters_.push_back(SyncWaiter{after - 1,
                                     // NOLINTNEXTLINE(clouddb-narrowing): cluster size is operator-configured and tiny
                                     static_cast<int>(slaves_.size()),
                                     std::move(done), std::move(result)});
}

void MasterNode::OnSlaveAck(net::NodeId slave_node, int64_t index) {
  // Cumulative group-commit acknowledgment: a slave acking `index` has
  // applied *every* event up to and including it, so one batch-end ack
  // releases each waiter in (previously acked, index]. Per-event acks
  // degenerate to the old exact-index behavior (prev is always index - 1).
  auto [it, inserted] = acked_through_.try_emplace(slave_node, int64_t{-1});
  int64_t prev = it->second;
  if (index <= prev) return;  // stale or duplicate ack
  it->second = index;
  std::vector<SyncWaiter> released;
  for (auto w = sync_waiters_.begin(); w != sync_waiters_.end();) {
    if (w->index > prev && w->index <= index && --w->remaining == 0) {
      released.push_back(std::move(*w));
      w = sync_waiters_.erase(w);
    } else {
      ++w;
    }
  }
  // Run callbacks after the scan: a released client may immediately issue
  // another synchronous write, which pushes onto sync_waiters_.
  for (SyncWaiter& w : released) {
    w.done(std::move(w.result));
  }
}

void MasterNode::OnDumpRequest(SlaveNode* slave, int64_t from_index) {
  if (!online() || database_ == nullptr) return;  // dead masters stay silent
  ++dump_requests_served_;
  if (from_index < 0) from_index = 0;
  int64_t size = binlog_size();
  network_->Send(node_id(), slave->node_id(), /*size_bytes=*/32,
                 [slave, size] { slave->OnResyncAck(size); });
  if (ship_.batch_size <= 1) {
    for (int64_t i = from_index; i < size; ++i) {
      PushEventTo(slave, database_->binlog().At(i));
    }
    return;
  }
  // Batched catch-up: re-stream the missing range in batch-size chunks so
  // a resync enjoys the same per-message amortization as the live stream.
  for (int64_t i = from_index; i < size; i += ship_.batch_size) {
    int64_t end = std::min(size, i + ship_.batch_size);
    auto batch = std::make_shared<std::vector<db::BinlogEvent>>();
    batch->reserve(static_cast<size_t>(end - i));
    for (int64_t j = i; j < end; ++j) {
      batch->push_back(database_->binlog().At(j));
    }
    ShipBatchTo(slave, batch);
  }
}

void MasterNode::OnBinlogAppend(const db::BinlogEvent& event) {
  if (ship_.batch_size <= 1) {
    // Legacy per-event push: one message per (slave, event), immediately.
    for (SlaveNode* slave : slaves_) {
      PushEventTo(slave, event);
    }
    return;
  }
  pending_batch_.push_back(event);
  // NOLINTNEXTLINE(clouddb-narrowing): pending batch is flushed at ship_.batch_size, far below 2^31
  if (static_cast<int>(pending_batch_.size()) >= ship_.batch_size) {
    FlushBatch();
  } else if (pending_batch_.size() == 1) {
    flush_timer_.ArmAfter(ship_.flush_interval);
  }
}

void MasterNode::FlushBatch() {
  flush_timer_.Cancel();
  if (pending_batch_.empty()) return;
  if (!online() || database_ == nullptr) {
    // A crashed master's buffered batch dies with it; the events are still
    // in the binlog, so slaves recover the range via gap-triggered resync.
    pending_batch_.clear();
    return;
  }
  auto batch = std::make_shared<const std::vector<db::BinlogEvent>>(
      std::move(pending_batch_));
  pending_batch_.clear();
  for (SlaveNode* slave : slaves_) {
    ShipBatchTo(slave, batch);
  }
}

void MasterNode::ShipBatchTo(
    SlaveNode* slave,
    const std::shared_ptr<const std::vector<db::BinlogEvent>>& batch) {
  ++batches_shipped_;
  ++messages_sent_;
  events_pushed_ += static_cast<int64_t>(batch->size());
  batches_counter_->Increment();
  events_per_batch_->Observe(static_cast<double>(batch->size()));
  int64_t size = 16;  // group-message header
  for (const db::BinlogEvent& event : *batch) {
    size += db::EventWireSize(event);
  }
  // The batch is shared across slaves; delivery hands each its own copy of
  // the events via the IO-thread batch entry point.
  network_->Send(node_id(), slave->node_id(), size,
                 [slave, batch] { slave->OnBinlogBatch(*batch); });
}

void MasterNode::PushEventTo(SlaveNode* slave, const db::BinlogEvent& event) {
  ++events_pushed_;
  ++messages_sent_;
  // Copy the event into the message; delivery invokes the slave's IO thread.
  network_->Send(node_id(), slave->node_id(), db::EventWireSize(event),
                 [slave, event] { slave->OnBinlogEvent(event); });
}

}  // namespace clouddb::repl
