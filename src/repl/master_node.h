#ifndef CLOUDDB_REPL_MASTER_NODE_H_
#define CLOUDDB_REPL_MASTER_NODE_H_

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "repl/db_node.h"
#include "cloud/instance.h"
#include "common/result.h"
#include "common/time_types.h"
#include "db/binlog.h"
#include "db/database.h"
#include "metrics/metric_registry.h"
#include "net/network.h"
#include "repl/cost_model.h"
#include "sim/simulation.h"

namespace clouddb::repl {

class SlaveNode;

/// Binlog shipping policy. With `batch_size <= 1` every appended event is
/// pushed to every slave as its own network message (the legacy path —
/// byte-identical wire charging and event ordering). With a larger batch
/// size the master accumulates events and ships one *group message* per
/// (slave, batch), flushing when the batch fills or `flush_interval`
/// elapses since the first buffered event — MySQL's group-committed binlog
/// dump, and the knob behind the `binlog_batch_size` ablation.
struct ShipOptions {
  int batch_size = 1;
  SimDuration flush_interval = Millis(5);
};

/// The replication master. All writes execute here; every committed
/// transaction is appended to the binlog and pushed (a "binlog dump thread"
/// per slave) over the network to each attached slave.
///
/// Replication is asynchronous by default, exactly as in the paper: the
/// client's write completes as soon as the master commits, and writesets
/// propagate later. Synchronous mode (the §II trade-off, available as an
/// ablation) holds the client response until every slave acknowledges the
/// event's application.
class MasterNode : public DbNode {
 public:
  MasterNode(sim::Simulation* sim, net::Network* network,
             cloud::Instance* instance, CostModel cost_model);

  /// Promotion constructor: becomes the master over an adopted database (a
  /// promoted slave's data), enabling binary logging on it. The new binlog
  /// starts empty; slaves attach from index 0 of the *new* timeline.
  MasterNode(sim::Simulation* sim, net::Network* network,
             cloud::Instance* instance, CostModel cost_model,
             std::unique_ptr<db::Database> adopted);

  /// Starts streaming binlog events with index >= the current binlog size to
  /// `slave` (events appended before attachment are assumed pre-loaded).
  void AttachSlave(SlaveNode* slave);

  /// Stops streaming to `slave` (elastic scale-in). The slave keeps its data
  /// and keeps serving whatever is already queued; it simply receives no
  /// further events. No-op when the slave is not attached. Any synchronous
  /// waiter still counting this slave's ack is released as if it had acked.
  void DetachSlave(SlaveNode* slave);

  void SetSynchronousReplication(bool sync) { synchronous_ = sync; }
  bool synchronous() const { return synchronous_; }

  /// Changes the shipping policy. Any events buffered under the old policy
  /// are flushed first so nothing is stranded across the switch.
  void SetShipOptions(const ShipOptions& options);
  const ShipOptions& ship_options() const { return ship_; }

  const std::vector<SlaveNode*>& slaves() const { return slaves_; }
  int64_t binlog_size() const { return database_->binlog().size(); }

  /// Ack from a slave that it applied event `index` (synchronous mode).
  /// Invoked via a network message from the slave.
  void OnSlaveAck(net::NodeId slave_node, int64_t index);

  /// Catch-up request from a reconnecting slave (arrives over the network):
  /// re-stream binlog events with index >= `from_index`. The dump ack is
  /// sent first on the same FIFO path, so the slave sees ack, then events,
  /// in order. A crashed/offline master stays silent — the slave's backoff
  /// handles it.
  void OnDumpRequest(SlaveNode* slave, int64_t from_index);

  int64_t events_pushed() const { return events_pushed_; }
  int64_t dump_requests_served() const { return dump_requests_served_; }
  /// Network messages carrying binlog events (per-event sends plus group
  /// messages). The shipping-cost figure the batching ablation reduces.
  int64_t messages_sent() const { return messages_sent_; }
  /// Group messages shipped (0 unless batching is enabled).
  int64_t batches_shipped() const { return batches_shipped_; }

 protected:
  // DbNode:
  void ExecuteAndRespond(const std::string& sql, QueryCallback done) override;

 private:
  void RegisterMasterMetrics();

  struct SyncWaiter {
    int64_t index;
    int remaining;
    QueryCallback done;
    Result<db::ExecResult> result;
  };

  void OnBinlogAppend(const db::BinlogEvent& event);
  void PushEventTo(SlaveNode* slave, const db::BinlogEvent& event);
  /// Ships the pending batch — one group message per slave — and rearms.
  void FlushBatch();
  void ShipBatchTo(SlaveNode* slave,
                   const std::shared_ptr<const std::vector<db::BinlogEvent>>&
                       batch);

  std::vector<SlaveNode*> slaves_;
  bool synchronous_ = false;
  std::deque<SyncWaiter> sync_waiters_;
  /// Highest binlog index each slave has cumulatively acknowledged. One
  /// batch-end ack covers every event in (previous, acked] — group commit.
  std::map<net::NodeId, int64_t> acked_through_;
  ShipOptions ship_;
  std::vector<db::BinlogEvent> pending_batch_;
  sim::Timer flush_timer_;
  int64_t events_pushed_ = 0;
  int64_t dump_requests_served_ = 0;
  int64_t messages_sent_ = 0;
  int64_t batches_shipped_ = 0;
  metrics::Counter* batches_counter_ = nullptr;   // owned by metrics_
  metrics::Ewma* events_per_batch_ = nullptr;     // owned by metrics_
};

}  // namespace clouddb::repl

#endif  // CLOUDDB_REPL_MASTER_NODE_H_
