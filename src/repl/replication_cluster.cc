#include "repl/replication_cluster.h"

#include "common/str_util.h"
#include "db/sql_parser.h"
#include "cloud/cloud_provider.h"
#include "cloud/instance.h"
#include "common/result.h"
#include "common/status.h"
#include "db/database.h"
#include "db/sql_ast.h"
#include "db/statement_cache.h"
#include "db/table.h"
#include "db/value.h"
#include "net/network.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"

namespace clouddb::repl {

ReplicationCluster::ReplicationCluster(cloud::CloudProvider* provider,
                                       const ClusterConfig& config)
    : provider_(provider), config_(config) {
  sim::Simulation* sim = &provider->simulation();
  net::Network* network = &provider->network();

  cloud::Instance* master_instance = provider->Launch(
      "master", config.master_type, config.master_placement);
  master_ = std::make_unique<MasterNode>(sim, network, master_instance,
                                         config.cost_model);
  master_->SetSynchronousReplication(config.synchronous_replication);

  for (int i = 0; i < config.num_slaves; ++i) {
    cloud::Instance* slave_instance =
        provider->Launch(StrFormat("slave-%d", i + 1), config.slave_type,
                         config.slave_placement);
    auto slave = std::make_unique<SlaveNode>(sim, network, slave_instance,
                                             config.cost_model);
    master_->AttachSlave(slave.get());
    slaves_.push_back(std::move(slave));
    retired_.push_back(false);
  }
}

int ReplicationCluster::num_active_slaves() const {
  int active = 0;
  for (bool retired : retired_) {
    if (!retired) ++active;
  }
  return active;
}

Status ReplicationCluster::SnapshotInto(SlaveNode* slave) {
  db::Database& src = master_->database();
  db::Database& dst = slave->database();
  for (const std::string& name : src.TableNames()) {
    const db::Table* table = src.GetTable(name);
    std::string ddl = StrFormat("CREATE TABLE %s %s", name.c_str(),
                                table->schema().ToString().c_str());
    auto created = dst.Execute(ddl);
    if (!created.ok()) return created.status();
    // One INSERT shape per table: prepare once, bind each row's literals —
    // the restore costs one parse per table, not one per row.
    Status row_status = Status::Ok();
    table->ScanAll([&](db::RowId, const db::Row& row) {
      std::string sql = StrFormat("INSERT INTO %s VALUES %s", name.c_str(),
                                  db::RowToString(row).c_str());
      Result<db::ExecResult> inserted = [&]() -> Result<db::ExecResult> {
        if (dst.statement_cache_enabled()) {
          Result<db::PreparedCall> call = dst.Prepare(sql);
          if (call.ok()) return dst.ExecutePrepared(*call, sql, nullptr);
        }
        return dst.Execute(sql);
      }();
      if (!inserted.ok()) {
        row_status = inserted.status();
        return false;
      }
      return true;
    });
    if (!row_status.ok()) return row_status;
  }
  return Status::Ok();
}

Result<int> ReplicationCluster::AddSlave() {
  sim::Simulation* sim = &provider_->simulation();
  net::Network* network = &provider_->network();
  cloud::Instance* instance = provider_->Launch(
      StrFormat("slave-%d", num_slaves() + 1), config_.slave_type,
      config_.slave_placement);
  auto slave = std::make_unique<SlaveNode>(sim, network, instance,
                                           config_.cost_model);
  slave->database().set_statement_cache_enabled(
      master_->database().statement_cache_enabled());
  slave->database().set_vectorized_exec_enabled(
      master_->database().vectorized_exec_enabled());
  CLOUDDB_RETURN_IF_ERROR(SnapshotInto(slave.get()));
  // The snapshot covers every event already in the binlog; attaching now
  // streams everything committed from this instant on.
  slave->SeedFromSnapshot(master_->binlog_size() - 1);
  master_->AttachSlave(slave.get());
  slaves_.push_back(std::move(slave));
  retired_.push_back(false);
  return num_slaves() - 1;
}

Status ReplicationCluster::RetireSlave(int i) {
  if (i < 0 || i >= num_slaves()) {
    return Status::InvalidArgument("no such slave");
  }
  if (retired_[static_cast<size_t>(i)]) return Status::Ok();
  retired_[static_cast<size_t>(i)] = true;
  master_->DetachSlave(slaves_[static_cast<size_t>(i)].get());
  return Status::Ok();
}

Status ReplicationCluster::ReviveSlave(int i) {
  if (i < 0 || i >= num_slaves()) {
    return Status::InvalidArgument("no such slave");
  }
  if (!retired_[static_cast<size_t>(i)]) return Status::Ok();
  retired_[static_cast<size_t>(i)] = false;
  SlaveNode* slave = slaves_[static_cast<size_t>(i)].get();
  master_->AttachSlave(slave);
  // Fetch the events missed while detached over the regular dump path; the
  // stream resumes exactly where this slave's SQL thread stopped.
  slave->RequestResync();
  return Status::Ok();
}

bool ReplicationCluster::IsSlaveRetired(int i) const {
  return i >= 0 && i < num_slaves() && retired_[static_cast<size_t>(i)];
}

Status ReplicationCluster::ExecuteEverywhereDirect(const std::string& sql) {
  // Parse once, execute everywhere (bulk loads run this for tens of
  // thousands of statements across up to a dozen replicas). With the
  // statement cache on, repeated load shapes (the common case: one INSERT
  // form per table) parse once across the *whole* load, not once per
  // statement — the master's prepared template runs on every replica.
  if (master_->database().statement_cache_enabled()) {
    Result<db::PreparedCall> call = master_->database().Prepare(sql);
    if (call.ok()) {
      master_->database().set_binlog_suppressed(true);
      auto result = master_->database().ExecutePrepared(*call, sql, nullptr);
      master_->database().set_binlog_suppressed(false);
      if (!result.ok()) return result.status();
      for (auto& slave : slaves_) {
        auto slave_result =
            slave->database().ExecutePrepared(*call, sql, nullptr);
        if (!slave_result.ok()) return slave_result.status();
      }
      return Status::Ok();
    }
  }
  CLOUDDB_ASSIGN_OR_RETURN(db::Statement stmt, db::ParseSql(sql));
  // Suppress binlogging of the pre-load on the master: slaves are loaded
  // identically and must not re-apply these statements.
  master_->database().set_binlog_suppressed(true);
  auto result = master_->database().ExecuteParsed(stmt, sql, nullptr);
  master_->database().set_binlog_suppressed(false);
  if (!result.ok()) return result.status();
  for (auto& slave : slaves_) {
    auto slave_result = slave->database().ExecuteParsed(stmt, sql, nullptr);
    if (!slave_result.ok()) return slave_result.status();
  }
  return Status::Ok();
}

void ReplicationCluster::SetStatementCacheEnabled(bool enabled) {
  master_->database().set_statement_cache_enabled(enabled);
  for (auto& slave : slaves_) {
    slave->database().set_statement_cache_enabled(enabled);
  }
}

void ReplicationCluster::SetVectorizedExecEnabled(bool enabled) {
  master_->database().set_vectorized_exec_enabled(enabled);
  for (auto& slave : slaves_) {
    slave->database().set_vectorized_exec_enabled(enabled);
  }
}

void ReplicationCluster::SetRowBasedReplication(bool enabled) {
  // Capture happens only on the master (slaves never binlog); slaves detect
  // writeset events per event, so there is no slave-side switch to flip.
  master_->database().set_row_based_repl_enabled(enabled);
}

void ReplicationCluster::SetBinlogBatchSize(int batch_size) {
  ShipOptions options = master_->ship_options();
  options.batch_size = batch_size;
  master_->SetShipOptions(options);
}

bool ReplicationCluster::FullyReplicated() const {
  int64_t size = master_->database().binlog().size();
  for (size_t i = 0; i < slaves_.size(); ++i) {
    if (retired_[i]) continue;  // detached: intentionally frozen
    if (slaves_[i]->applied_index() != size - 1) return false;
    if (slaves_[i]->relay_backlog() != 0) return false;
  }
  return true;
}

bool ReplicationCluster::Converged() const {
  for (size_t i = 0; i < slaves_.size(); ++i) {
    if (retired_[i]) continue;  // detached: intentionally frozen
    // The heartbeat table intentionally diverges: NOW_MICROS() re-evaluates
    // per replica (that divergence *is* the delay measurement).
    if (!db::Database::ContentsEqual(master_->database(),
                                     slaves_[i]->database(), {"heartbeat"})) {
      return false;
    }
  }
  return true;
}

}  // namespace clouddb::repl
