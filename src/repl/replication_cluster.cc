#include "repl/replication_cluster.h"

#include "common/str_util.h"
#include "db/sql_parser.h"
#include "cloud/cloud_provider.h"
#include "cloud/instance.h"
#include "common/result.h"
#include "common/status.h"
#include "db/database.h"
#include "db/sql_ast.h"
#include "db/statement_cache.h"
#include "net/network.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"

namespace clouddb::repl {

ReplicationCluster::ReplicationCluster(cloud::CloudProvider* provider,
                                       const ClusterConfig& config)
    : provider_(provider), config_(config) {
  sim::Simulation* sim = &provider->simulation();
  net::Network* network = &provider->network();

  cloud::Instance* master_instance = provider->Launch(
      "master", config.master_type, config.master_placement);
  master_ = std::make_unique<MasterNode>(sim, network, master_instance,
                                         config.cost_model);
  master_->SetSynchronousReplication(config.synchronous_replication);

  for (int i = 0; i < config.num_slaves; ++i) {
    cloud::Instance* slave_instance =
        provider->Launch(StrFormat("slave-%d", i + 1), config.slave_type,
                         config.slave_placement);
    auto slave = std::make_unique<SlaveNode>(sim, network, slave_instance,
                                             config.cost_model);
    master_->AttachSlave(slave.get());
    slaves_.push_back(std::move(slave));
  }
}

Status ReplicationCluster::ExecuteEverywhereDirect(const std::string& sql) {
  // Parse once, execute everywhere (bulk loads run this for tens of
  // thousands of statements across up to a dozen replicas). With the
  // statement cache on, repeated load shapes (the common case: one INSERT
  // form per table) parse once across the *whole* load, not once per
  // statement — the master's prepared template runs on every replica.
  if (master_->database().statement_cache_enabled()) {
    Result<db::PreparedCall> call = master_->database().Prepare(sql);
    if (call.ok()) {
      master_->database().set_binlog_suppressed(true);
      auto result = master_->database().ExecutePrepared(*call, sql, nullptr);
      master_->database().set_binlog_suppressed(false);
      if (!result.ok()) return result.status();
      for (auto& slave : slaves_) {
        auto slave_result =
            slave->database().ExecutePrepared(*call, sql, nullptr);
        if (!slave_result.ok()) return slave_result.status();
      }
      return Status::Ok();
    }
  }
  CLOUDDB_ASSIGN_OR_RETURN(db::Statement stmt, db::ParseSql(sql));
  // Suppress binlogging of the pre-load on the master: slaves are loaded
  // identically and must not re-apply these statements.
  master_->database().set_binlog_suppressed(true);
  auto result = master_->database().ExecuteParsed(stmt, sql, nullptr);
  master_->database().set_binlog_suppressed(false);
  if (!result.ok()) return result.status();
  for (auto& slave : slaves_) {
    auto slave_result = slave->database().ExecuteParsed(stmt, sql, nullptr);
    if (!slave_result.ok()) return slave_result.status();
  }
  return Status::Ok();
}

void ReplicationCluster::SetStatementCacheEnabled(bool enabled) {
  master_->database().set_statement_cache_enabled(enabled);
  for (auto& slave : slaves_) {
    slave->database().set_statement_cache_enabled(enabled);
  }
}

bool ReplicationCluster::FullyReplicated() const {
  int64_t size = master_->database().binlog().size();
  for (const auto& slave : slaves_) {
    if (slave->applied_index() != size - 1) return false;
    if (slave->relay_backlog() != 0) return false;
  }
  return true;
}

bool ReplicationCluster::Converged() const {
  for (const auto& slave : slaves_) {
    // The heartbeat table intentionally diverges: NOW_MICROS() re-evaluates
    // per replica (that divergence *is* the delay measurement).
    if (!db::Database::ContentsEqual(master_->database(), slave->database(),
                                     {"heartbeat"})) {
      return false;
    }
  }
  return true;
}

}  // namespace clouddb::repl
