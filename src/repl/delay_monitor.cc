#include "repl/delay_monitor.h"
#include "common/stats.h"
#include "db/database.h"
#include "db/table.h"
#include "db/value.h"

namespace clouddb::repl {

std::map<int64_t, int64_t> ReadHeartbeats(const db::Database& database,
                                          const std::string& table) {
  std::map<int64_t, int64_t> out;
  const db::Table* t = database.GetTable(table);
  if (t == nullptr) return out;
  auto id_col = t->schema().ColumnIndex("hb_id");
  auto ts_col = t->schema().ColumnIndex("ts");
  if (!id_col.ok() || !ts_col.ok()) return out;
  t->ScanAll([&](db::RowId, const db::Row& row) {
    const db::Value& id = row[*id_col];
    const db::Value& ts = row[*ts_col];
    if (!id.is_null() && !ts.is_null()) {
      out[id.AsInt64()] = ts.AsInt64();
    }
    return true;
  });
  return out;
}

std::vector<double> HeartbeatDelaysMs(const db::Database& master,
                                      const db::Database& slave,
                                      int64_t min_id, int64_t max_id,
                                      const std::string& table) {
  std::map<int64_t, int64_t> m = ReadHeartbeats(master, table);
  std::map<int64_t, int64_t> s = ReadHeartbeats(slave, table);
  std::vector<double> delays;
  for (const auto& [id, master_ts] : m) {
    if (id < min_id || id > max_id) continue;
    auto it = s.find(id);
    if (it == s.end()) continue;  // not yet replicated
    delays.push_back(static_cast<double>(it->second - master_ts) / 1000.0);
  }
  return delays;
}

double AverageRelativeDelayMs(const std::vector<double>& loaded_delays_ms,
                              const std::vector<double>& idle_delays_ms,
                              double trim_fraction) {
  Sample loaded;
  loaded.AddAll(loaded_delays_ms);
  Sample idle;
  idle.AddAll(idle_delays_ms);
  return loaded.TrimmedMean(trim_fraction) - idle.TrimmedMean(trim_fraction);
}

}  // namespace clouddb::repl
