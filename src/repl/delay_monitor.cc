#include "repl/delay_monitor.h"

#include "common/result.h"
#include "common/stats.h"
#include "db/database.h"
#include "db/statement_cache.h"
#include "db/value.h"

namespace clouddb::repl {

std::map<int64_t, int64_t> ReadHeartbeats(db::Database& database,
                                          const std::string& table) {
  std::map<int64_t, int64_t> out;
  if (database.GetTable(table) == nullptr) return out;
  // The scan is issued through the statement cache: the first poll parses
  // the SELECT once, every later poll binds the same template again (the
  // same parse-once discipline the apply path uses). Pollers run this every
  // heartbeat period, so re-parsing here was pure overhead.
  const std::string sql = "SELECT hb_id, ts FROM " + table;
  Result<db::ExecResult> rows = [&]() -> Result<db::ExecResult> {
    if (database.statement_cache_enabled()) {
      Result<db::PreparedCall> call = database.Prepare(sql);
      if (call.ok()) return database.ExecutePrepared(*call, sql, nullptr);
    }
    return database.Execute(sql);
  }();
  if (!rows.ok()) return out;
  int id_col = -1;
  int ts_col = -1;
  for (size_t i = 0; i < rows->column_names.size(); ++i) {
    // NOLINTNEXTLINE(clouddb-narrowing): column index over a result-set width, far below 2^31
    if (rows->column_names[i] == "hb_id") id_col = static_cast<int>(i);
    // NOLINTNEXTLINE(clouddb-narrowing): column index over a result-set width, far below 2^31
    if (rows->column_names[i] == "ts") ts_col = static_cast<int>(i);
  }
  if (id_col < 0 || ts_col < 0) return out;
  for (const db::Row& row : rows->rows) {
    const db::Value& id = row[static_cast<size_t>(id_col)];
    const db::Value& ts = row[static_cast<size_t>(ts_col)];
    if (!id.is_null() && !ts.is_null()) {
      out[id.AsInt64()] = ts.AsInt64();
    }
  }
  return out;
}

std::vector<double> HeartbeatDelaysMs(db::Database& master,
                                      db::Database& slave, int64_t min_id,
                                      int64_t max_id,
                                      const std::string& table) {
  std::map<int64_t, int64_t> m = ReadHeartbeats(master, table);
  std::map<int64_t, int64_t> s = ReadHeartbeats(slave, table);
  std::vector<double> delays;
  for (const auto& [id, master_ts] : m) {
    if (id < min_id || id > max_id) continue;
    auto it = s.find(id);
    if (it == s.end()) continue;  // not yet replicated
    delays.push_back(static_cast<double>(it->second - master_ts) / 1000.0);
  }
  return delays;
}

double AverageRelativeDelayMs(const std::vector<double>& loaded_delays_ms,
                              const std::vector<double>& idle_delays_ms,
                              double trim_fraction) {
  Sample loaded;
  loaded.AddAll(loaded_delays_ms);
  Sample idle;
  idle.AddAll(idle_delays_ms);
  return loaded.TrimmedMean(trim_fraction) - idle.TrimmedMean(trim_fraction);
}

}  // namespace clouddb::repl
