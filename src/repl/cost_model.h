#ifndef CLOUDDB_REPL_COST_MODEL_H_
#define CLOUDDB_REPL_COST_MODEL_H_

#include <map>
#include <string>

#include "common/time_types.h"
#include "db/sql_ast.h"
#include "db/writeset.h"

namespace clouddb::repl {

/// Nominal CPU cost of executing statements on a database node, expressed in
/// microseconds at instance speed 1.0 (an EC2 small instance). The Cloudstone
/// workload overrides these per operation; the cost model supplies defaults
/// and, importantly, the cost of *applying* replicated writesets on slaves —
/// the second load source the paper identifies on each slave.
struct CostModel {
  SimDuration select_cost = Millis(60);
  SimDuration insert_cost = Millis(30);
  SimDuration update_cost = Millis(40);
  SimDuration delete_cost = Millis(40);
  SimDuration ddl_cost = Millis(5);
  SimDuration txn_control_cost = Micros(100);

  /// Slave apply cost = apply_factor * the statement's nominal cost
  /// (statement re-execution skips the application round trip, connection
  /// handling and result serialization the master performed).
  double apply_factor = 0.5;

  /// Per-table overrides for apply cost (e.g. the tiny heartbeat table).
  /// Applies to statement apply only — covered writesets bypass it (they
  /// never target the function-bearing tables the overrides exist for).
  std::map<std::string, SimDuration> apply_cost_by_table;

  /// Direct row-image apply (row-based mode): locate + mutate + index
  /// maintenance only — no lexing, parsing, planning, or expression
  /// evaluation. Charged per covered statement plus a per-row term.
  SimDuration writeset_apply_cost = Millis(2);
  SimDuration writeset_row_cost = Micros(100);

  /// Default execution cost by statement kind.
  SimDuration EstimateStatement(const db::Statement& stmt) const;

  /// Cost of applying a replicated statement on a slave.
  SimDuration EstimateApply(const db::Statement& stmt) const;

  /// Cost of directly applying one covered writeset statement on a slave.
  SimDuration EstimateWritesetApply(const db::StatementWriteset& ws) const;
};

}  // namespace clouddb::repl

#endif  // CLOUDDB_REPL_COST_MODEL_H_
