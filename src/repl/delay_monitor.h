#ifndef CLOUDDB_REPL_DELAY_MONITOR_H_
#define CLOUDDB_REPL_DELAY_MONITOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "db/database.h"

namespace clouddb::repl {

/// Reads the heartbeat table of `database`: id -> committed local timestamp
/// (µs on that replica's clock). The scan runs through the statement cache
/// (non-const: the first call warms the template, repeated polls hit it),
/// falling back to a plain parse when the cache is disabled.
std::map<int64_t, int64_t> ReadHeartbeats(db::Database& database,
                                          const std::string& table);

/// Per-heartbeat replication delay in milliseconds for ids in
/// [min_id, max_id] that are committed on both replicas:
/// slave local apply time minus master local commit time. Includes the
/// inter-instance clock offset — exactly what the raw measurement in the
/// paper includes.
std::vector<double> HeartbeatDelaysMs(db::Database& master,
                                      db::Database& slave, int64_t min_id,
                                      int64_t max_id,
                                      const std::string& table = "heartbeat");

/// The paper's *average relative replication delay* (§IV-B.1): the
/// difference between the average loaded delay and the average idle delay on
/// the same slave, each a two-sided trimmed mean ("sampled with the top 5%
/// and the bottom 5% data cut out as outliers"). Subtracting the idle
/// baseline cancels the (NTP-stabilized) clock offset between the instances.
double AverageRelativeDelayMs(const std::vector<double>& loaded_delays_ms,
                              const std::vector<double>& idle_delays_ms,
                              double trim_fraction = 0.05);

}  // namespace clouddb::repl

#endif  // CLOUDDB_REPL_DELAY_MONITOR_H_
