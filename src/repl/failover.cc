#include "repl/failover.h"

#include <algorithm>
#include <cassert>

#include "common/str_util.h"
#include "common/status.h"
#include "db/database.h"
#include "db/table.h"
#include "db/value.h"
#include "net/network.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"

namespace clouddb::repl {

Status ResyncDatabase(const db::Database& source, db::Database* target) {
  // Drop everything the target has...
  for (const std::string& name : target->TableNames()) {
    auto dropped = target->Execute(StrFormat("DROP TABLE %s", name.c_str()));
    if (!dropped.ok()) return dropped.status();
  }
  // ...and rebuild it from the source: schema, rows, secondary indexes.
  for (const std::string& name : source.TableNames()) {
    const db::Table* table = source.GetTable(name);
    auto created = target->Execute(StrFormat(
        "CREATE TABLE %s %s", name.c_str(), table->schema().ToString().c_str()));
    if (!created.ok()) return created.status();
    Status insert_status;
    table->ScanAll([&](db::RowId, const db::Row& row) {
      auto inserted = target->Execute(
          StrFormat("INSERT INTO %s VALUES %s", name.c_str(),
                    db::RowToString(row).c_str()));
      if (!inserted.ok()) {
        insert_status = inserted.status();
        return false;
      }
      return true;
    });
    if (!insert_status.ok()) return insert_status;
    for (const auto& [index_name, column] : table->SecondaryIndexes()) {
      auto indexed = target->Execute(StrFormat(
          "CREATE INDEX %s ON %s (%s)", index_name.c_str(), name.c_str(),
          column.c_str()));
      if (!indexed.ok()) return indexed.status();
    }
  }
  return Status::Ok();
}

FailoverManager::FailoverManager(sim::Simulation* sim, net::Network* network,
                                 net::NodeId monitor_node, MasterNode* master,
                                 std::vector<SlaveNode*> slaves,
                                 const FailoverOptions& options)
    : sim_(sim),
      network_(network),
      monitor_node_(monitor_node),
      master_(master),
      slaves_(std::move(slaves)),
      options_(options) {
  assert(options.failures_to_trip >= 1);
  probe_timeout_.Bind(sim_, [this] {
    if (probe_answered_) return;
    probe_answered_ = true;
    OnProbeResult(false);
  });
  next_probe_.Bind(sim_, [this] { Probe(); });
}

void FailoverManager::Start() {
  running_ = true;
  Probe();
}

void FailoverManager::Stop() {
  running_ = false;
  probe_timeout_.Cancel();
  next_probe_.Cancel();
}

MasterNode* FailoverManager::current_master() { return master_; }

void FailoverManager::Probe() {
  if (!running_) return;
  ++probes_sent_;
  int64_t epoch = ++probe_epoch_;
  probe_answered_ = false;
  MasterNode* target = master_;
  network_->Send(
      monitor_node_, target->node_id(), /*size_bytes=*/32,
      [this, target, epoch] {
        if (!target->online()) return;  // a dead node never replies
        network_->Send(target->node_id(), monitor_node_, /*size_bytes=*/32,
                       [this, epoch] {
                         // A straggler reply from a previous probe (its
                         // timeout already fired) must not answer this one.
                         if (epoch != probe_epoch_ || probe_answered_) return;
                         probe_answered_ = true;
                         probe_timeout_.Cancel();
                         OnProbeResult(true);
                       });
      });
  probe_timeout_.ArmAfter(options_.probe_timeout);
}

void FailoverManager::OnProbeResult(bool alive) {
  if (!running_) return;
  if (alive) {
    consecutive_failures_ = 0;
  } else {
    ++probes_failed_;
    ++consecutive_failures_;
    if (consecutive_failures_ >= options_.failures_to_trip) {
      for (const auto& listener : detection_listeners_) listener();
      PerformFailover();
      consecutive_failures_ = 0;
    }
  }
  next_probe_.ArmAfter(options_.check_interval);
}

void FailoverManager::PerformFailover() {
  // 1. Elect the most-up-to-date healthy slave.
  SlaveNode* winner = nullptr;
  for (SlaveNode* slave : slaves_) {
    if (!slave->online() || slave->replication_broken()) continue;
    if (winner == nullptr || slave->applied_index() > winner->applied_index()) {
      winner = slave;
    }
  }
  if (winner == nullptr) return;  // nothing to promote; keep probing

  // Were there committed-but-unshipped writes on the dead master? (We can
  // see its binlog in the simulator; a real system only discovers this from
  // the wreckage later.)
  if (master_->binlog_size() - 1 > winner->applied_index()) {
    lost_writes_possible_ = true;
    lost_writes_count_ += master_->binlog_size() - 1 - winner->applied_index();
  }

  // 2. Promote: a new MasterNode on the winner's instance adopts its data.
  promoted_slave_ = winner;
  owned_masters_.push_back(std::make_unique<MasterNode>(
      sim_, network_, &winner->instance(), winner->cost_model(),
      winner->ReleaseDatabase()));
  MasterNode* new_master = owned_masters_.back().get();

  // 3. Resynchronize the other survivors and re-attach them to the new
  //    binlog timeline.
  std::vector<SlaveNode*> survivors;
  for (SlaveNode* slave : slaves_) {
    if (slave == winner || !slave->online()) continue;
    Status resynced = ResyncDatabase(new_master->database(),
                                     &slave->database());
    if (!resynced.ok()) continue;  // leave it detached; operators page in
    slave->ReattachToNewTimeline(new_master);
    new_master->AttachSlave(slave);
    survivors.push_back(slave);
  }
  slaves_ = std::move(survivors);
  master_ = new_master;
  for (const auto& listener : failover_listeners_) listener(new_master);
}

}  // namespace clouddb::repl
