#include "repl/heartbeat.h"

#include "common/str_util.h"
#include "common/result.h"
#include "common/status.h"
#include "db/database.h"
#include "repl/master_node.h"
#include "sim/simulation.h"

namespace clouddb::repl {

HeartbeatPlugin::HeartbeatPlugin(sim::Simulation* sim, MasterNode* master,
                                 HeartbeatOptions options)
    : sim_(sim), master_(master), options_(std::move(options)) {}

Status HeartbeatPlugin::CreateTable() {
  auto result = master_->ExecuteDirect(
      StrFormat("CREATE TABLE %s (hb_id BIGINT PRIMARY KEY, ts BIGINT)",
                options_.table.c_str()));
  return result.ok() ? Status::Ok() : result.status();
}

void HeartbeatPlugin::Start() {
  running_ = true;
  // First insert fires synchronously; the timer re-arms in place for the
  // rest, so steady-state heartbeats allocate nothing.
  ticker_.Start(sim_, options_.period, [this] { Tick(); });
  Tick();
}

void HeartbeatPlugin::Stop() {
  running_ = false;
  ticker_.Stop();
}

void HeartbeatPlugin::Tick() {
  if (!running_) return;
  std::string sql =
      StrFormat("INSERT INTO %s (hb_id, ts) VALUES (%lld, NOW_MICROS())",
                options_.table.c_str(), static_cast<long long>(next_id_));
  ++next_id_;
  master_->Submit(sql, options_.insert_cost,
                  [](Result<db::ExecResult>) { /* fire-and-forget */ });
}

}  // namespace clouddb::repl
