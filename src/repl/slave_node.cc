#include "repl/slave_node.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <optional>
#include <vector>

#include "db/sql_parser.h"
#include "repl/master_node.h"
#include "cloud/instance.h"
#include "common/result.h"
#include "common/time_types.h"
#include "db/binlog.h"
#include "db/database.h"
#include "db/sql_ast.h"
#include "db/statement_cache.h"
#include "db/writeset_apply.h"
#include "net/network.h"
#include "repl/cost_model.h"
#include "sim/simulation.h"

namespace clouddb::repl {

SlaveNode::SlaveNode(sim::Simulation* sim, net::Network* network,
                     cloud::Instance* instance, CostModel cost_model)
    : DbNode(sim, network, instance, std::move(cost_model),
             /*enable_binlog=*/false) {
  ack_timer_.Bind(sim_, [this] { OnAckTimeout(); });
  retry_timer_.Bind(sim_, [this] { RequestResync(); });
  metrics_.AddProbe("repl.slave.applied_index", [this] {
    return static_cast<double>(applied_index_);
  });
  metrics_.AddProbe("repl.slave.relay_backlog", [this] {
    return static_cast<double>(relay_backlog());
  });
  metrics_.AddProbe("repl.slave.events_applied", [this] {
    return static_cast<double>(events_applied_);
  });
  metrics_.AddProbe("repl.slave.broken",
                    [this] { return broken_ ? 1.0 : 0.0; });
  // Push-model sampler on the apply path: raw per-event delay as the slave
  // observes it (local apply time minus the master's commit stamp, so it
  // includes the clock offset — the paper's uncorrected measurement).
  apply_delay_ms_ = metrics_.AddEwma("repl.slave.apply_delay_ms");
  metrics_.AddProbe("repl.apply.writeset", [this] {
    return static_cast<double>(writeset_applies_);
  });
  metrics_.AddProbe("repl.apply.fallback", [this] {
    return static_cast<double>(fallback_applies_);
  });
}

void SlaveNode::OnBinlogBatch(const std::vector<db::BinlogEvent>& events) {
  if (broken_ || !online()) return;
  int64_t before = next_expected_;
  for (const db::BinlogEvent& event : events) {
    OnBinlogEvent(event);
  }
  // Register the batch boundary only if the batch advanced the stream (a
  // pure-duplicate batch from an overlapping resync has nothing to ack).
  if (next_expected_ > before) {
    batch_ack_marks_.push_back(next_expected_ - 1);
  }
}

void SlaveNode::OnBinlogEvent(db::BinlogEvent event) {
  if (broken_ || !online()) return;
  if (event.index < next_expected_) {
    // Already received (a resync stream overlapping live pushes).
    ++duplicate_events_dropped_;
    return;
  }
  if (event.index > next_expected_) {
    // Events went missing on the wire (partition window, packet loss, or a
    // crash that ate the relay log). Applying past the gap would silently
    // diverge, so drop and — when enabled — fetch the missing range.
    ++gap_events_detected_;
    if (auto_resync_) RequestResync();
    return;
  }
  next_expected_ = event.index + 1;
  relay_log_.push_back(std::move(event));
  MaybeStartApply();
}

void SlaveNode::MaybeStartApply() {
  if (applying_ || broken_ || relay_log_.empty()) return;
  applying_ = true;
  db::BinlogEvent event = std::move(relay_log_.front());
  relay_log_.pop_front();

  // Parse each statement once: the same prepared call (or, for uncacheable
  // shapes like replicated DDL, the same AST) feeds both the cost model and
  // the apply below. Covered writesets skip the lexer/parser entirely —
  // both here (cost) and in the apply (row images straight into the table).
  struct PreparedApply {
    bool direct = false;  // covered writeset: apply row images, no parsing
    std::optional<db::PreparedCall> call;
    std::optional<db::Statement> ast;
  };
  // shared_ptr because the CPU job is a std::function (copyable) while the
  // prepared ASTs are move-only.
  auto prepared =
      std::make_shared<std::vector<PreparedApply>>(event.statements.size());
  SimDuration cost = 0;
  for (size_t i = 0; i < event.statements.size(); ++i) {
    if (event.has_writesets() && event.writesets[i].covered) {
      cost += cost_model_.EstimateWritesetApply(event.writesets[i]);
      (*prepared)[i].direct = true;
      continue;
    }
    const std::string& sql = event.statements[i];
    if (database_ != nullptr && database_->statement_cache_enabled()) {
      auto call = database_->Prepare(sql);
      if (call.ok()) {
        cost += cost_model_.EstimateApply(call->prepared->statement);
        (*prepared)[i].call = std::move(*call);
        continue;
      }
    }
    auto parsed = db::ParseSql(sql);
    if (parsed.ok()) {
      cost += cost_model_.EstimateApply(*parsed);
      (*prepared)[i].ast = std::move(*parsed);
    }
    // Unparseable statements contribute no cost; the apply below re-parses,
    // fails identically, and stops the SQL thread.
  }

  int64_t epoch = apply_epoch_;
  instance_->cpu().Submit(cost, [this, epoch, event = std::move(event),
                                 prepared = std::move(prepared)]() mutable {
    if (epoch != apply_epoch_) return;  // rebased while this job was queued
    // Apply the event atomically (it was one transaction on the master).
    for (size_t i = 0; i < event.statements.size(); ++i) {
      const std::string& sql = event.statements[i];
      PreparedApply& prep = (*prepared)[i];
      if (prep.direct) {
        auto session = database_->CreateSession();
        Result<int64_t> rows = db::ApplyStatementWriteset(
            database_.get(), session.get(), event.writesets[i]);
        if (!rows.ok()) {
          broken_ = true;
          applying_ = false;
          return;
        }
        ++writeset_applies_;
        continue;
      }
      if (event.has_writesets()) ++fallback_applies_;
      Result<db::ExecResult> result =
          prep.call.has_value()
              ? ExecutePreparedNow(*prep.call, sql)
              : (prep.ast.has_value() ? ExecuteParsedNow(*prep.ast, sql)
                                      : ExecuteNow(sql));
      if (!result.ok()) {
        // MySQL stops the SQL thread on an apply error; replication on this
        // slave halts until an operator intervenes.
        broken_ = true;
        applying_ = false;
        return;
      }
    }
    applied_index_ = event.index;
    ++events_applied_;
    apply_delay_ms_->Observe(
        static_cast<double>(instance_->LocalNowMicros() -
                            event.commit_micros) /
        1000.0);
    // Group-commit ack: inside a batch, hold the ack until the batch-end
    // event applies, then send one cumulative ack for the whole range.
    bool ack_due = true;
    if (!batch_ack_marks_.empty()) {
      if (applied_index_ >= batch_ack_marks_.front()) {
        batch_ack_marks_.pop_front();
      } else {
        ack_due = false;
      }
    }
    if (ack_due && master_ != nullptr && master_->synchronous()) {
      int64_t index = event.index;
      MasterNode* master = master_;
      network_->Send(node_id(), master->node_id(), /*size_bytes=*/48,
                     [master, this, index] {
                       master->OnSlaveAck(node_id(), index);
                     });
    }
    if (apply_listener_) apply_listener_(event);
    applying_ = false;
    MaybeStartApply();
  });
}

void SlaveNode::StartAutoResync(const ReconnectOptions& options) {
  assert(options.keepalive_period > 0 && options.ack_timeout > 0);
  assert(options.initial_backoff > 0 &&
         options.max_backoff >= options.initial_backoff);
  reconnect_ = options;
  auto_resync_ = true;
  backoff_ = 0;
  keepalive_.Start(sim_, reconnect_.keepalive_period,
                   [this] { KeepaliveTick(); });
}

void SlaveNode::StopAutoResync() {
  auto_resync_ = false;
  awaiting_ack_ = false;
  backoff_ = 0;
  keepalive_.Stop();
  ack_timer_.Cancel();
  retry_timer_.Cancel();
}

void SlaveNode::KeepaliveTick() {
  if (!auto_resync_) return;
  // Skip when a request is in flight or a backoff retry is already
  // scheduled — the keepalive is the steady-state probe, not the retry path.
  if (!awaiting_ack_ && backoff_ == 0) RequestResync();
}

void SlaveNode::RequestResync() {
  if (awaiting_ack_ || broken_ || !online() || database_ == nullptr ||
      master_ == nullptr) {
    return;
  }
  awaiting_ack_ = true;
  ++resync_requests_sent_;
  int64_t from = next_expected_;
  MasterNode* master = master_;
  network_->Send(node_id(), master->node_id(), /*size_bytes=*/48,
                 [master, this, from] { master->OnDumpRequest(this, from); });
  // Re-arming supersedes any stale timeout from an earlier request, so the
  // armed timeout always refers to the request just sent.
  ack_timer_.ArmAfter(reconnect_.effective_ack_timeout());
}

void SlaveNode::OnAckTimeout() {
  if (!awaiting_ack_) return;  // ack arrived, or the attempt was abandoned
  awaiting_ack_ = false;
  backoff_ = backoff_ == 0
                 ? reconnect_.initial_backoff
                 : std::min(backoff_ * 2, reconnect_.max_backoff);
  // The retry consumes its backoff slot; RequestResync's keepalive gate
  // reopens once this attempt is acked.
  retry_timer_.ArmAfter(backoff_);
}

void SlaveNode::OnResyncAck(int64_t master_binlog_size) {
  (void)master_binlog_size;  // events follow on the same FIFO path
  if (!awaiting_ack_) return;  // stale ack from a superseded attempt
  awaiting_ack_ = false;
  backoff_ = 0;
  ++resync_acks_received_;
  ack_timer_.Cancel();
}

void SlaveNode::OnPowerEvent(bool up) {
  DbNode::OnPowerEvent(up);
  if (!up) {
    // The relay log and the event being applied lived in memory; the CPU
    // Halt() already invalidated the in-flight apply job (and the epoch
    // bump covers a plain set_online-style outage without a CPU halt).
    relay_log_.clear();
    batch_ack_marks_.clear();
    applying_ = false;
    ++apply_epoch_;
    awaiting_ack_ = false;
    ack_timer_.Cancel();
    retry_timer_.Cancel();
    return;
  }
  // Reboot: resume the stream from the last durably applied position.
  next_expected_ = applied_index_ + 1;
  backoff_ = 0;
  if (auto_resync_ && !broken_) RequestResync();
}

void SlaveNode::ReattachToNewTimeline(MasterNode* new_master) {
  relay_log_.clear();
  batch_ack_marks_.clear();
  applied_index_ = -1;
  next_expected_ = 0;
  broken_ = false;
  applying_ = false;
  ++apply_epoch_;
  master_ = new_master;
  // Abandon any catch-up attempt against the old timeline.
  awaiting_ack_ = false;
  backoff_ = 0;
  ack_timer_.Cancel();
  retry_timer_.Cancel();
}

}  // namespace clouddb::repl
