#include "repl/slave_node.h"

#include <cassert>

#include "db/sql_parser.h"
#include "repl/master_node.h"

namespace clouddb::repl {

SlaveNode::SlaveNode(sim::Simulation* sim, net::Network* network,
                     cloud::Instance* instance, CostModel cost_model)
    : DbNode(sim, network, instance, std::move(cost_model),
             /*enable_binlog=*/false) {}

void SlaveNode::OnBinlogEvent(db::BinlogEvent event) {
  if (broken_ || !online()) return;
  relay_log_.push_back(std::move(event));
  MaybeStartApply();
}

void SlaveNode::MaybeStartApply() {
  if (applying_ || broken_ || relay_log_.empty()) return;
  applying_ = true;
  db::BinlogEvent event = std::move(relay_log_.front());
  relay_log_.pop_front();

  // Cost the whole transaction's re-execution.
  SimDuration cost = 0;
  for (const std::string& sql : event.statements) {
    auto parsed = db::ParseSql(sql);
    if (parsed.ok()) cost += cost_model_.EstimateApply(*parsed);
  }

  instance_->cpu().Submit(cost, [this, event = std::move(event)]() mutable {
    // Apply the event atomically (it was one transaction on the master).
    for (const std::string& sql : event.statements) {
      Result<db::ExecResult> result = ExecuteNow(sql);
      if (!result.ok()) {
        // MySQL stops the SQL thread on an apply error; replication on this
        // slave halts until an operator intervenes.
        broken_ = true;
        applying_ = false;
        return;
      }
    }
    applied_index_ = event.index;
    ++events_applied_;
    if (master_ != nullptr && master_->synchronous()) {
      int64_t index = event.index;
      MasterNode* master = master_;
      network_->Send(node_id(), master->node_id(), /*size_bytes=*/48,
                     [master, this, index] {
                       master->OnSlaveAck(node_id(), index);
                     });
    }
    if (apply_listener_) apply_listener_(event);
    applying_ = false;
    MaybeStartApply();
  });
}

}  // namespace clouddb::repl
