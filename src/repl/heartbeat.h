#ifndef CLOUDDB_REPL_HEARTBEAT_H_
#define CLOUDDB_REPL_HEARTBEAT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/time_types.h"
#include "repl/master_node.h"
#include "sim/simulation.h"

namespace clouddb::repl {

/// Heartbeat configuration.
struct HeartbeatOptions {
  /// Insert cadence ("insert a new row with a global id and a local time
  /// stamp to the master periodically", §III-A).
  SimDuration period = Seconds(1);
  /// CPU cost of the heartbeat insert on the master (tiny table).
  SimDuration insert_cost = Millis(4);
  std::string table = "heartbeat";
};

/// The paper's replication-delay probe. A Heartbeats table is synchronized
/// in SQL-statement form across replicas; each row stores a global id and
/// NOW_MICROS(). Because statement-based replication re-evaluates
/// NOW_MICROS() per replica, the master's table holds master-local commit
/// times and each slave's table holds that slave's local apply times; the
/// per-id difference is the replication delay (plus the clock offset, which
/// the *relative* delay computation cancels — see delay_monitor.h).
class HeartbeatPlugin {
 public:
  HeartbeatPlugin(sim::Simulation* sim, MasterNode* master,
                  HeartbeatOptions options);

  /// Creates the heartbeat table on the master (replicated to slaves through
  /// the binlog like any DDL).
  Status CreateTable();

  /// Starts periodic inserts (first one immediately).
  void Start();
  void Stop();

  /// Id that the next heartbeat will use; ids issued so far are [1, next-1].
  int64_t next_id() const { return next_id_; }
  const HeartbeatOptions& options() const { return options_; }

 private:
  void Tick();

  sim::Simulation* sim_;
  MasterNode* master_;
  HeartbeatOptions options_;
  bool running_ = false;
  int64_t next_id_ = 1;
  sim::PeriodicTimer ticker_;
};

}  // namespace clouddb::repl

#endif  // CLOUDDB_REPL_HEARTBEAT_H_
