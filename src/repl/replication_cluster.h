#ifndef CLOUDDB_REPL_REPLICATION_CLUSTER_H_
#define CLOUDDB_REPL_REPLICATION_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud_provider.h"
#include "common/result.h"
#include "common/status.h"
#include "repl/cost_model.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "cloud/instance.h"
#include "cloud/placement.h"

namespace clouddb::repl {

/// Deployment description for a master/slave replication tier.
struct ClusterConfig {
  int num_slaves = 1;
  cloud::Placement master_placement = cloud::MasterPlacement();
  cloud::Placement slave_placement = cloud::SameZonePlacement();
  /// The paper runs master and slaves on small instances "so that saturation
  /// is expected to be observed early".
  cloud::InstanceType master_type = cloud::InstanceType::kSmall;
  cloud::InstanceType slave_type = cloud::InstanceType::kSmall;
  CostModel cost_model;
  bool synchronous_replication = false;
};

/// Launches instances on the given cloud and wires a master plus N slaves
/// into a replication tier (the paper's "second layer" / "third layer").
class ReplicationCluster {
 public:
  ReplicationCluster(cloud::CloudProvider* provider, const ClusterConfig& config);

  MasterNode* master() { return master_.get(); }
  SlaveNode* slave(int i) { return slaves_[static_cast<size_t>(i)].get(); }
  /// Total slaves ever launched, retired ones included — indexes are stable
  /// (they align with the proxy's backend indexes).
  // NOLINTNEXTLINE(clouddb-narrowing): cluster size is operator-configured and tiny
  int num_slaves() const { return static_cast<int>(slaves_.size()); }
  int num_active_slaves() const;
  const ClusterConfig& config() const { return config_; }

  /// Elastic scale-out (the control loop's actuator): launches a fresh
  /// instance, restores a snapshot of the master's current contents onto it
  /// (as an operator restores a backup before attaching a replica), and
  /// attaches it to the binlog stream. Returns the new slave's index.
  Result<int> AddSlave();

  /// Elastic scale-in: detaches slave `i` from the master's stream and marks
  /// it retired. The node object stays alive (in-flight reads drain
  /// normally) but is excluded from FullyReplicated()/Converged() and no
  /// longer receives events. Idempotent per slave.
  Status RetireSlave(int i);

  /// Re-activates a previously retired slave: snapshot-refreshes its data
  /// from the master and re-attaches it. Scale-out prefers reviving a
  /// retired node over launching a new instance.
  Status ReviveSlave(int i);

  bool IsSlaveRetired(int i) const;

  /// Runs `sql` directly on every replica (master and slaves), bypassing CPU
  /// and replication — identical pre-loading of all copies.
  Status ExecuteEverywhereDirect(const std::string& sql);

  /// Toggles the statement cache on every replica's database (the fig2-style
  /// cache on/off ablation; results must be bit-identical either way).
  void SetStatementCacheEnabled(bool enabled);

  /// Toggles the vectorized execution engine on every replica's database
  /// (same ablation contract: results must be bit-identical either way).
  void SetVectorizedExecEnabled(bool enabled);

  /// Toggles row-based replication: the master captures row images next to
  /// each statement event, and slaves apply covered statements via the
  /// parser-free row-delta path. Same ablation contract: replica *state*
  /// must be bit-identical either way (DDL and function-bearing statements
  /// always fall back to statement apply).
  void SetRowBasedReplication(bool enabled);

  /// Sets the binlog group-shipping batch size on the master (<= 1 restores
  /// the legacy one-message-per-event push, byte-identical to the seed).
  void SetBinlogBatchSize(int batch_size);

  /// True when every slave has applied the whole master binlog.
  bool FullyReplicated() const;

  /// True when all replicas hold identical data (deep content equality) —
  /// the eventual-consistency convergence check.
  bool Converged() const;

 private:
  /// Copies the master's current tables into `slave` (snapshot restore).
  Status SnapshotInto(SlaveNode* slave);

  cloud::CloudProvider* provider_;
  ClusterConfig config_;
  std::unique_ptr<MasterNode> master_;
  std::vector<std::unique_ptr<SlaveNode>> slaves_;
  std::vector<bool> retired_;  // parallel to slaves_
};

}  // namespace clouddb::repl

#endif  // CLOUDDB_REPL_REPLICATION_CLUSTER_H_
