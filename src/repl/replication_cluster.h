#ifndef CLOUDDB_REPL_REPLICATION_CLUSTER_H_
#define CLOUDDB_REPL_REPLICATION_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud_provider.h"
#include "common/status.h"
#include "repl/cost_model.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "cloud/instance.h"
#include "cloud/placement.h"

namespace clouddb::repl {

/// Deployment description for a master/slave replication tier.
struct ClusterConfig {
  int num_slaves = 1;
  cloud::Placement master_placement = cloud::MasterPlacement();
  cloud::Placement slave_placement = cloud::SameZonePlacement();
  /// The paper runs master and slaves on small instances "so that saturation
  /// is expected to be observed early".
  cloud::InstanceType master_type = cloud::InstanceType::kSmall;
  cloud::InstanceType slave_type = cloud::InstanceType::kSmall;
  CostModel cost_model;
  bool synchronous_replication = false;
};

/// Launches instances on the given cloud and wires a master plus N slaves
/// into a replication tier (the paper's "second layer" / "third layer").
class ReplicationCluster {
 public:
  ReplicationCluster(cloud::CloudProvider* provider, const ClusterConfig& config);

  MasterNode* master() { return master_.get(); }
  SlaveNode* slave(int i) { return slaves_[static_cast<size_t>(i)].get(); }
  int num_slaves() const { return static_cast<int>(slaves_.size()); }
  const ClusterConfig& config() const { return config_; }

  /// Runs `sql` directly on every replica (master and slaves), bypassing CPU
  /// and replication — identical pre-loading of all copies.
  Status ExecuteEverywhereDirect(const std::string& sql);

  /// Toggles the statement cache on every replica's database (the fig2-style
  /// cache on/off ablation; results must be bit-identical either way).
  void SetStatementCacheEnabled(bool enabled);

  /// True when every slave has applied the whole master binlog.
  bool FullyReplicated() const;

  /// True when all replicas hold identical data (deep content equality) —
  /// the eventual-consistency convergence check.
  bool Converged() const;

 private:
  cloud::CloudProvider* provider_;
  ClusterConfig config_;
  std::unique_ptr<MasterNode> master_;
  std::vector<std::unique_ptr<SlaveNode>> slaves_;
};

}  // namespace clouddb::repl

#endif  // CLOUDDB_REPL_REPLICATION_CLUSTER_H_
