#ifndef CLOUDDB_REPL_DB_NODE_H_
#define CLOUDDB_REPL_DB_NODE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "cloud/instance.h"
#include "common/result.h"
#include "db/database.h"
#include "metrics/metric_registry.h"
#include "net/network.h"
#include "repl/cost_model.h"
#include "sim/simulation.h"
#include "common/time_types.h"
#include "db/sql_ast.h"
#include "db/statement_cache.h"

namespace clouddb::repl {

/// A database server process running on a cloud instance. Queries are
/// charged to the instance's CPU (FCFS) before executing against the embedded
/// `db::Database`; the database's NOW_MICROS() reads the instance's drifting
/// local clock, exactly like the paper's user-defined µs-resolution time
/// function (MySQL Bug #8523 workaround).
class DbNode {
 public:
  using QueryCallback = std::function<void(Result<db::ExecResult>)>;

  DbNode(sim::Simulation* sim, net::Network* network,
         cloud::Instance* instance, CostModel cost_model, bool enable_binlog);

  /// Adoption constructor: runs the node on `instance` over an *existing*
  /// database (used when promoting a slave: the new master adopts the
  /// promoted replica's data in place). Rebinds the database's NOW_MICROS
  /// to this node's instance clock.
  DbNode(sim::Simulation* sim, net::Network* network,
         cloud::Instance* instance, CostModel cost_model,
         std::unique_ptr<db::Database> adopted, bool enable_binlog);

  virtual ~DbNode() = default;

  DbNode(const DbNode&) = delete;
  DbNode& operator=(const DbNode&) = delete;

  /// Queues `sql` on the node's CPU with nominal cost `cpu_cost`
  /// (< 0 = use the cost model's per-kind default) and executes it when the
  /// CPU reaches it. `done` fires on this node at completion; callers on
  /// other instances talk to the node through `client::Connection`, which
  /// adds the network hops.
  void Submit(const std::string& sql, SimDuration cpu_cost,
              QueryCallback done);

  /// Executes immediately, bypassing CPU accounting and the network —
  /// for test setup and bulk pre-loading ("both the master and slaves
  /// should start with a pre-loaded, fully-synchronized database").
  Result<db::ExecResult> ExecuteDirect(const std::string& sql);

  db::Database& database() { return *database_; }
  const db::Database& database() const { return *database_; }
  cloud::Instance& instance() { return *instance_; }
  const cloud::Instance& instance() const { return *instance_; }
  net::NodeId node_id() const { return instance_->node_id(); }
  const CostModel& cost_model() const { return cost_model_; }

  int64_t queries_completed() const { return queries_completed_; }
  int64_t queries_failed() const { return queries_failed_; }

  /// Per-node metric registry (scoped by the instance name). The base node
  /// registers pull-model probes over its existing counters — query totals,
  /// statement-cache hit rates, cumulative CPU busy time — so instrumenting
  /// costs nothing on the Execute hot path; subclasses add their own.
  metrics::MetricRegistry& metrics() { return metrics_; }
  const metrics::MetricRegistry& metrics() const { return metrics_; }

  /// Simulated process/instance failure. An offline node refuses queries
  /// (the caller gets Unavailable after the usual CPU-free turnaround) and
  /// does not answer health probes. Bringing a node back online does *not*
  /// resynchronize it — that is the failover manager's job (or, for slaves,
  /// SlaveNode's auto-resync).
  void set_online(bool online) { online_ = online; }
  bool online() const { return online_; }

  /// Detaches the node's database (promotion: the new master adopts it).
  /// The node goes offline; any further queries are refused.
  std::unique_ptr<db::Database> ReleaseDatabase();

 protected:
  sim::Simulation* sim() { return sim_; }
  net::Network* network() { return network_; }

  /// Parses and executes on the autocommit session; updates counters.
  Result<db::ExecResult> ExecuteNow(const std::string& sql);

  /// Executes an already-prepared call (statement-cache template + bound
  /// literals); updates counters. `sql` is the original text for the binlog.
  Result<db::ExecResult> ExecutePreparedNow(const db::PreparedCall& call,
                                            const std::string& sql);

  /// Executes an already-parsed statement; updates counters. Used where the
  /// AST was needed anyway (cost estimation) so the text is parsed once.
  Result<db::ExecResult> ExecuteParsedNow(const db::Statement& stmt,
                                          const std::string& sql);

  /// Runs once the CPU reaches the query: executes and delivers the result.
  /// MasterNode overrides this to defer the response in synchronous
  /// replication mode.
  virtual void ExecuteAndRespond(const std::string& sql, QueryCallback done) {
    done(ExecuteNow(sql));
  }

  /// Fires on every Crash()/Restart() of the hosting instance (registered
  /// as an instance power listener at construction). The base follows the
  /// instance's power state; SlaveNode extends it to drop volatile relay
  /// state on the way down and to reconnect on the way up.
  virtual void OnPowerEvent(bool up) { online_ = up; }

  sim::Simulation* sim_;
  net::Network* network_;
  cloud::Instance* instance_;
  CostModel cost_model_;
  std::unique_ptr<db::Database> database_;
  metrics::MetricRegistry metrics_;
  bool online_ = true;
  int64_t queries_completed_ = 0;
  int64_t queries_failed_ = 0;

 private:
  void RegisterBaseMetrics();
};

}  // namespace clouddb::repl

#endif  // CLOUDDB_REPL_DB_NODE_H_
