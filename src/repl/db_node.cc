#include "repl/db_node.h"

#include "db/sql_parser.h"
#include "cloud/instance.h"
#include "common/result.h"
#include "common/status.h"
#include "common/time_types.h"
#include "db/database.h"
#include "db/sql_ast.h"
#include "db/statement_cache.h"
#include "net/network.h"
#include "repl/cost_model.h"
#include "sim/simulation.h"

namespace clouddb::repl {

DbNode::DbNode(sim::Simulation* sim, net::Network* network,
               cloud::Instance* instance, CostModel cost_model,
               bool enable_binlog)
    : sim_(sim),
      network_(network),
      instance_(instance),
      cost_model_(std::move(cost_model)),
      metrics_(instance->name()) {
  db::DatabaseOptions options;
  options.enable_binlog = enable_binlog;
  options.now_micros = [this] { return instance_->LocalNowMicros(); };
  database_ = std::make_unique<db::Database>(std::move(options));
  instance_->AddPowerListener([this](bool up) { OnPowerEvent(up); });
  RegisterBaseMetrics();
}

DbNode::DbNode(sim::Simulation* sim, net::Network* network,
               cloud::Instance* instance, CostModel cost_model,
               std::unique_ptr<db::Database> adopted, bool enable_binlog)
    : sim_(sim),
      network_(network),
      instance_(instance),
      cost_model_(std::move(cost_model)),
      database_(std::move(adopted)),
      metrics_(instance->name()) {
  database_->set_binlog_enabled(enable_binlog);
  // The adopted database's clock must follow *this* node's instance (the
  // previous owner's lambda would dangle).
  database_->SetTimeSource([this] { return instance_->LocalNowMicros(); });
  instance_->AddPowerListener([this](bool up) { OnPowerEvent(up); });
  RegisterBaseMetrics();
}

void DbNode::RegisterBaseMetrics() {
  // Pull-model probes over counters the node maintains anyway: the hot path
  // pays nothing, readers compute the value on demand.
  metrics_.AddProbe("db.queries.completed", [this] {
    return static_cast<double>(queries_completed_);
  });
  metrics_.AddProbe("db.queries.failed", [this] {
    return static_cast<double>(queries_failed_);
  });
  metrics_.AddProbe("db.statement_cache.hits", [this] {
    return database_ == nullptr
               ? 0.0
               : static_cast<double>(database_->statement_cache().stats().hits);
  });
  metrics_.AddProbe("db.statement_cache.misses", [this] {
    return database_ == nullptr
               ? 0.0
               : static_cast<double>(
                     database_->statement_cache().stats().misses);
  });
  metrics_.AddProbe("db.statement_cache.hit_rate", [this] {
    if (database_ == nullptr) return 0.0;
    const db::StatementCacheStats& stats = database_->statement_cache().stats();
    int64_t lookups = stats.hits + stats.misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(stats.hits) /
                              static_cast<double>(lookups);
  });
  metrics_.AddProbe("db.cpu.busy_micros", [this] {
    return static_cast<double>(instance_->cpu().CumulativeBusyMicros());
  });
}

std::unique_ptr<db::Database> DbNode::ReleaseDatabase() {
  online_ = false;
  return std::move(database_);
}

void DbNode::Submit(const std::string& sql, SimDuration cpu_cost,
                    QueryCallback done) {
  if (!online_ || database_ == nullptr) {
    // Connection refused: the caller hears back after its network round
    // trip, with no CPU consumed here.
    sim_->ScheduleAfter(0, [done = std::move(done)] {
      done(Status::Unavailable("database node is offline"));
    });
    return;
  }
  if (cpu_cost < 0) {
    // Parsing for cost estimation is not charged: real servers spend a
    // negligible fraction of statement time in the parser. Estimating
    // through Prepare() warms the statement cache, so the Execute() this
    // submit leads to reuses the same parse instead of a second one.
    cpu_cost = SimDuration{0};
    if (database_->statement_cache_enabled()) {
      auto call = database_->Prepare(sql);
      if (call.ok()) {
        cpu_cost = cost_model_.EstimateStatement(call->prepared->statement);
      } else {
        auto parsed = db::ParseSql(sql);
        if (parsed.ok()) cpu_cost = cost_model_.EstimateStatement(*parsed);
      }
    } else {
      auto parsed = db::ParseSql(sql);
      if (parsed.ok()) cpu_cost = cost_model_.EstimateStatement(*parsed);
    }
  }
  instance_->cpu().Submit(cpu_cost, [this, sql, done = std::move(done)]() mutable {
    ExecuteAndRespond(sql, std::move(done));
  });
}

Result<db::ExecResult> DbNode::ExecuteDirect(const std::string& sql) {
  return ExecuteNow(sql);
}

Result<db::ExecResult> DbNode::ExecuteNow(const std::string& sql) {
  if (!online_ || database_ == nullptr) {
    ++queries_failed_;
    return Status::Unavailable("database node is offline");
  }
  Result<db::ExecResult> result = database_->Execute(sql);
  if (result.ok()) {
    ++queries_completed_;
  } else {
    ++queries_failed_;
  }
  return result;
}

Result<db::ExecResult> DbNode::ExecutePreparedNow(const db::PreparedCall& call,
                                                  const std::string& sql) {
  if (!online_ || database_ == nullptr) {
    ++queries_failed_;
    return Status::Unavailable("database node is offline");
  }
  Result<db::ExecResult> result =
      database_->ExecutePrepared(call, sql, nullptr);
  if (result.ok()) {
    ++queries_completed_;
  } else {
    ++queries_failed_;
  }
  return result;
}

Result<db::ExecResult> DbNode::ExecuteParsedNow(const db::Statement& stmt,
                                                const std::string& sql) {
  if (!online_ || database_ == nullptr) {
    ++queries_failed_;
    return Status::Unavailable("database node is offline");
  }
  Result<db::ExecResult> result = database_->ExecuteParsed(stmt, sql, nullptr);
  if (result.ok()) {
    ++queries_completed_;
  } else {
    ++queries_failed_;
  }
  return result;
}

}  // namespace clouddb::repl
