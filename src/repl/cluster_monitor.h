#ifndef CLOUDDB_REPL_CLUSTER_MONITOR_H_
#define CLOUDDB_REPL_CLUSTER_MONITOR_H_

#include <cstdint>
#include <vector>

#include "common/table_writer.h"
#include "common/time_types.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"

namespace clouddb::repl {

/// One sampling instant of the replication tier's health.
struct MonitorSample {
  SimTime at = 0;
  /// CPU utilization over the interval ending at `at`, in [0, 1].
  double master_cpu = 0.0;
  std::vector<double> slave_cpu;
  /// Relay-log events received but not yet applied, per slave.
  std::vector<size_t> relay_backlog;
  /// Replication lag in binlog events (master size - 1 - applied index).
  std::vector<int64_t> lag_events;
  int64_t binlog_size = 0;
};

/// Periodic sampler of the whole tier: per-instance CPU utilization,
/// relay-log backlogs and event lag. This is the observability an operator
/// of the paper's deployment would run to *see* the saturation-point
/// movement of §IV-A (slave CPUs pinning first, then the master) instead of
/// inferring it from throughput curves.
class ClusterMonitor {
 public:
  ClusterMonitor(sim::Simulation* sim, MasterNode* master,
                 std::vector<SlaveNode*> slaves, SimDuration interval);

  ClusterMonitor(const ClusterMonitor&) = delete;
  ClusterMonitor& operator=(const ClusterMonitor&) = delete;

  /// Starts sampling; the first sample lands one interval from now.
  void Start();
  void Stop();

  const std::vector<MonitorSample>& samples() const { return samples_; }

  /// Peak lag (in events) any slave reached over the recorded window.
  int64_t MaxLagEvents() const;
  /// Mean master utilization over the recorded window.
  double MeanMasterCpu() const;
  /// Fraction of samples where slave `i` was above `threshold` utilization.
  double SlaveSaturatedFraction(int slave_index, double threshold) const;

  /// One row per sample: time, master cpu, each slave's cpu and backlog.
  TableWriter ToTable() const;

 private:
  void Tick();

  sim::Simulation* sim_;
  MasterNode* master_;
  std::vector<SlaveNode*> slaves_;
  SimDuration interval_;
  bool running_ = false;
  int64_t last_master_busy_ = 0;
  std::vector<int64_t> last_slave_busy_;
  std::vector<MonitorSample> samples_;
  sim::PeriodicTimer ticker_;
};

}  // namespace clouddb::repl

#endif  // CLOUDDB_REPL_CLUSTER_MONITOR_H_
