#ifndef CLOUDDB_REPL_SLAVE_NODE_H_
#define CLOUDDB_REPL_SLAVE_NODE_H_

#include <deque>
#include <functional>

#include "db/binlog.h"
#include "repl/db_node.h"
#include "cloud/instance.h"
#include "common/time_types.h"
#include "metrics/metric_registry.h"
#include "net/network.h"
#include "repl/cost_model.h"
#include "sim/simulation.h"

namespace clouddb::repl {

class MasterNode;

/// Transient-fault survival knobs for a slave's IO thread (see
/// SlaveNode::StartAutoResync).
struct ReconnectOptions {
  /// Fallback ack wait used when `ack_timeout` is left unset (0): one
  /// second, comfortably above any simulated RTT yet short enough that a
  /// partitioned master is detected within a keepalive period.
  static constexpr SimDuration kDefaultAckTimeout = Seconds(1);

  /// Keepalive cadence: how often an idle, connected slave confirms its
  /// position with the master (MySQL's slave_net_timeout analogue).
  SimDuration keepalive_period = Seconds(2);
  /// How long to wait for the master's dump ack before a retry; 0 means
  /// "use kDefaultAckTimeout".
  SimDuration ack_timeout = kDefaultAckTimeout;
  /// Exponential-backoff bounds for retries while the master is
  /// unreachable: initial, doubling per failure, capped.
  SimDuration initial_backoff = Millis(500);
  SimDuration max_backoff = Seconds(8);

  /// The timeout RequestResync actually arms.
  SimDuration effective_ack_timeout() const {
    return ack_timeout == 0 ? kDefaultAckTimeout : ack_timeout;
  }
};

/// A replication slave. Two logical threads, as in MySQL:
///
/// - the *IO thread* receives binlog events from the master's dump thread
///   and appends them to the relay log (no CPU charge — network I/O);
/// - the *SQL apply thread* pops relay-log events in order and re-executes
///   their statements, one event at a time, charged to the same CPU that
///   serves read queries. This shared FCFS queue is the resource contention
///   the paper identifies: increasing read load delays writeset application
///   and vice versa, inflating the replication delay.
///
/// Fault survival: the relay log is volatile (lost on instance crash) but
/// the applied database models a durable volume. Events dropped by
/// partitions/packet loss/crashes show up as *gaps* in the dense binlog
/// index sequence; with auto-resync enabled the slave re-requests the
/// missing range from the master, retrying with bounded exponential
/// backoff while the master is unreachable — instead of silently diverging
/// forever on the first lost event.
class SlaveNode : public DbNode {
 public:
  SlaveNode(sim::Simulation* sim, net::Network* network,
            cloud::Instance* instance, CostModel cost_model);

  /// Records the master (for synchronous-mode acks). Called by
  /// MasterNode::AttachSlave.
  void SetMaster(MasterNode* master) { master_ = master; }

  /// IO thread entry: a binlog event arrived from the master.
  /// Duplicates (index already received) are dropped; a gap (index beyond
  /// the next expected) is dropped too and, under auto-resync, triggers an
  /// immediate catch-up request.
  void OnBinlogEvent(db::BinlogEvent event);

  /// IO thread entry for a group message (see ShipOptions): unpacks the
  /// batch into the relay log in order and records the batch boundary so
  /// synchronous mode sends ONE cumulative ack per batch (group commit)
  /// instead of one per event.
  void OnBinlogBatch(const std::vector<db::BinlogEvent>& events);

  /// Marks the slave as pre-loaded with the master's data through binlog
  /// index `applied_index` (snapshot restore before a mid-run attachment):
  /// the IO thread expects the next event after the snapshot point instead
  /// of index 0, so the first live event is not mistaken for a gap.
  void SeedFromSnapshot(int64_t applied_index) {
    applied_index_ = applied_index;
    next_expected_ = applied_index + 1;
  }

  /// Index of the last fully applied event (-1 if none).
  int64_t applied_index() const { return applied_index_; }
  int64_t events_applied() const { return events_applied_; }
  /// Statements applied via the row-image fast path (no parser) vs. those
  /// that fell back to statement re-execution while row-based events were
  /// in the stream (DDL, function-bearing shapes).
  int64_t writeset_applies() const { return writeset_applies_; }
  int64_t fallback_applies() const { return fallback_applies_; }
  /// Relay-log events received but not yet applied.
  size_t relay_backlog() const { return relay_log_.size() + (applying_ ? 1 : 0); }
  /// True if an apply error stopped replication (MySQL stops the SQL thread).
  bool replication_broken() const { return broken_; }

  /// Instrumentation hook: fires after each event is applied.
  void SetApplyListener(std::function<void(const db::BinlogEvent&)> listener) {
    apply_listener_ = std::move(listener);
  }

  // --- Transient-fault survival (IO-thread reconnect) ---

  /// Starts the keepalive/catch-up loop: the slave periodically confirms
  /// its binlog position with the master and requests any events it is
  /// missing. While the master is unreachable (crashed, partitioned) the
  /// request is retried with exponential backoff bounded by
  /// `options.max_backoff`. Call StopAutoResync() before draining the
  /// simulation — like ClusterMonitor/HeartbeatPlugin, the keepalive is a
  /// repeating event.
  void StartAutoResync(const ReconnectOptions& options = {});
  void StopAutoResync();
  bool auto_resync_enabled() const { return auto_resync_; }

  /// One catch-up attempt right now: asks the master to re-stream events
  /// from this slave's next expected index. No-op while a request is
  /// already outstanding, the SQL thread is broken, or the node is offline.
  void RequestResync();

  /// Dump ack from the master (arrives over the network ahead of the
  /// re-streamed events): the master is reachable and will send events up
  /// to `master_binlog_size`. Resets the backoff.
  void OnResyncAck(int64_t master_binlog_size);

  /// Reconnect observability.
  int64_t resync_requests_sent() const { return resync_requests_sent_; }
  int64_t resync_acks_received() const { return resync_acks_received_; }
  int64_t duplicate_events_dropped() const { return duplicate_events_dropped_; }
  int64_t gap_events_detected() const { return gap_events_detected_; }
  SimDuration current_backoff() const { return backoff_; }

  /// Rebases the slave onto a *new* master's (empty) binlog timeline after a
  /// failover: drops any relay-log remnants of the old timeline, clears a
  /// broken SQL thread and any pending reconnect attempt, and expects events
  /// from index 0. The caller is responsible for having resynchronized the
  /// data first.
  void ReattachToNewTimeline(MasterNode* new_master);

 protected:
  // DbNode: crash loses the relay log and any half-applied event; restart
  // rejoins the stream via resync (when enabled).
  void OnPowerEvent(bool up) override;

 private:
  void MaybeStartApply();
  /// Index of the next event the IO thread expects from the wire.
  int64_t NextExpectedIndex() const { return next_expected_; }
  void KeepaliveTick();
  void OnAckTimeout();

  MasterNode* master_ = nullptr;
  std::deque<db::BinlogEvent> relay_log_;
  /// Batch-end indexes still awaiting their cumulative ack, in order. While
  /// the front mark is ahead of applied_index_, per-event acks are
  /// suppressed; reaching the mark sends one ack covering the whole batch.
  std::deque<int64_t> batch_ack_marks_;
  bool applying_ = false;
  bool broken_ = false;
  int64_t applied_index_ = -1;
  int64_t events_applied_ = 0;
  int64_t writeset_applies_ = 0;
  int64_t fallback_applies_ = 0;
  int64_t next_expected_ = 0;
  /// Bumped when the SQL thread's world is rebased (timeline reattach,
  /// power loss); an in-flight apply job from an older epoch must not touch
  /// the rebased database when its CPU callback finally fires.
  int64_t apply_epoch_ = 0;
  std::function<void(const db::BinlogEvent&)> apply_listener_;
  metrics::Ewma* apply_delay_ms_ = nullptr;  // owned by metrics_

  // Reconnect state.
  bool auto_resync_ = false;
  ReconnectOptions reconnect_;
  bool awaiting_ack_ = false;
  SimDuration backoff_ = 0;
  int64_t resync_requests_sent_ = 0;
  int64_t resync_acks_received_ = 0;
  int64_t duplicate_events_dropped_ = 0;
  int64_t gap_events_detected_ = 0;
  // Persistent kernel slots: the keepalive re-arms in place every period,
  // and the per-request ack timeout / backoff retry arm and cancel the same
  // two slots for the lifetime of the node (no per-request allocation).
  sim::PeriodicTimer keepalive_;
  sim::Timer ack_timer_;
  sim::Timer retry_timer_;
};

}  // namespace clouddb::repl

#endif  // CLOUDDB_REPL_SLAVE_NODE_H_
