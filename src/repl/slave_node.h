#ifndef CLOUDDB_REPL_SLAVE_NODE_H_
#define CLOUDDB_REPL_SLAVE_NODE_H_

#include <deque>
#include <functional>

#include "db/binlog.h"
#include "repl/db_node.h"

namespace clouddb::repl {

class MasterNode;

/// A replication slave. Two logical threads, as in MySQL:
///
/// - the *IO thread* receives binlog events from the master's dump thread
///   and appends them to the relay log (no CPU charge — network I/O);
/// - the *SQL apply thread* pops relay-log events in order and re-executes
///   their statements, one event at a time, charged to the same CPU that
///   serves read queries. This shared FCFS queue is the resource contention
///   the paper identifies: increasing read load delays writeset application
///   and vice versa, inflating the replication delay.
class SlaveNode : public DbNode {
 public:
  SlaveNode(sim::Simulation* sim, net::Network* network,
            cloud::Instance* instance, CostModel cost_model);

  /// Records the master (for synchronous-mode acks). Called by
  /// MasterNode::AttachSlave.
  void SetMaster(MasterNode* master) { master_ = master; }

  /// IO thread entry: a binlog event arrived from the master.
  void OnBinlogEvent(db::BinlogEvent event);

  /// Index of the last fully applied event (-1 if none).
  int64_t applied_index() const { return applied_index_; }
  int64_t events_applied() const { return events_applied_; }
  /// Relay-log events received but not yet applied.
  size_t relay_backlog() const { return relay_log_.size() + (applying_ ? 1 : 0); }
  /// True if an apply error stopped replication (MySQL stops the SQL thread).
  bool replication_broken() const { return broken_; }

  /// Instrumentation hook: fires after each event is applied.
  void SetApplyListener(std::function<void(const db::BinlogEvent&)> listener) {
    apply_listener_ = std::move(listener);
  }

  /// Rebases the slave onto a *new* master's (empty) binlog timeline after a
  /// failover: drops any relay-log remnants of the old timeline, clears a
  /// broken SQL thread, and expects events from index 0. The caller is
  /// responsible for having resynchronized the data first.
  void ReattachToNewTimeline(MasterNode* new_master) {
    relay_log_.clear();
    applied_index_ = -1;
    broken_ = false;
    master_ = new_master;
  }

 private:
  void MaybeStartApply();

  MasterNode* master_ = nullptr;
  std::deque<db::BinlogEvent> relay_log_;
  bool applying_ = false;
  bool broken_ = false;
  int64_t applied_index_ = -1;
  int64_t events_applied_ = 0;
  std::function<void(const db::BinlogEvent&)> apply_listener_;
};

}  // namespace clouddb::repl

#endif  // CLOUDDB_REPL_SLAVE_NODE_H_
