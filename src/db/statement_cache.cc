#include "db/statement_cache.h"

#include <utility>
#include <variant>

#include "db/sql_lexer.h"
#include "db/sql_parser.h"
#include "common/result.h"
#include "common/status.h"
#include "db/sql_ast.h"
#include "db/value.h"
#include "db/vec_expr.h"

namespace clouddb::db {

namespace {

/// True when the fingerprint's leading token can begin a cacheable
/// statement. Everything else (DDL, transaction control, garbage) takes the
/// plain parse path so its behavior — including error text — is identical
/// with the cache off. The check is exact: keywords are uppercased in the
/// fingerprint and every token carries a trailing space, so an identifier
/// spelled "selectx" ("selectx ") can never match "SELECT ".
bool CacheableFingerprint(const std::string& fp) {
  auto starts_with = [&](const char* prefix) {
    return fp.compare(0, std::char_traits<char>::length(prefix), prefix) == 0;
  };
  return starts_with("SELECT ") || starts_with("INSERT ") ||
         starts_with("UPDATE ") || starts_with("DELETE ");
}

bool IsLiteralToken(const Token& t) {
  return t.type == TokenType::kInteger || t.type == TokenType::kDouble ||
         t.type == TokenType::kString;
}

}  // namespace

std::string FingerprintTokens(const std::vector<Token>& tokens,
                              std::vector<Value>* params) {
  std::string fp;
  fp.reserve(tokens.size() * 6);
  for (const Token& t : tokens) {
    switch (t.type) {
      case TokenType::kInteger:
        params->push_back(Value(t.int_value));
        fp += "? ";
        break;
      case TokenType::kDouble:
        params->push_back(Value(t.double_value));
        fp += "? ";
        break;
      case TokenType::kString:
        params->push_back(Value(t.text));
        fp += "? ";
        break;
      case TokenType::kEnd:
        break;
      default:
        fp += t.text;
        fp += ' ';
        break;
    }
  }
  return fp;
}

namespace {

/// The token stream with each literal replaced by a kParameter token whose
/// int_value is the parameter slot. Offsets are preserved so parse errors in
/// the template (which are rare — the caller falls back on them) still point
/// at the original source.
std::vector<Token> MaskLiterals(const std::vector<Token>& tokens) {
  std::vector<Token> masked;
  masked.reserve(tokens.size());
  int64_t next_param = 0;
  for (const Token& t : tokens) {
    if (IsLiteralToken(t)) {
      Token p;
      p.type = TokenType::kParameter;
      p.text = "?";
      p.int_value = next_param++;
      p.offset = t.offset;
      masked.push_back(std::move(p));
    } else {
      masked.push_back(t);
    }
  }
  return masked;
}

}  // namespace

StatementCache::StatementCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

Result<PreparedCall> StatementCache::Prepare(const std::string& sql) {
  // Fastest path: the exact same text as the previous call (a client
  // re-issuing a fixed statement). One string compare, no scan.
  if (has_last_ && sql == last_sql_) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, last_it_);
    return PreparedCall{last_it_->prepared, last_params_};
  }

  // Hit path: one fused scan over the text — no token vector, no parse.
  std::vector<Value> params;
  CLOUDDB_ASSIGN_OR_RETURN(std::string fingerprint,
                           FingerprintSql(sql, &params));
  if (!CacheableFingerprint(fingerprint)) {
    ++stats_.bypasses;
    return Status::NotSupported("statement shape not cacheable");
  }

  auto it = index_.find(fingerprint);
  if (it != index_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to MRU
    RememberLast(sql, params);
    return PreparedCall{it->second->prepared, std::move(params)};
  }

  // Miss: tokenize for real and parse the literal-masked token stream into a
  // reusable template. (The fingerprint scan above already validated the
  // text lexically, so Tokenize cannot fail here.)
  CLOUDDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Result<Statement> parsed = ParseTokens(MaskLiterals(tokens));
  if (!parsed.ok()) {
    // Malformed SQL (or a shape the masked grammar cannot express). Let the
    // caller re-parse the original text so the reported error is
    // byte-identical to the cache-off path.
    ++stats_.bypasses;
    return Status::NotSupported("statement template failed to parse");
  }
  ++stats_.misses;
  auto prepared = std::make_shared<PreparedStatement>();
  prepared->fingerprint = fingerprint;
  prepared->statement = std::move(*parsed);
  prepared->param_count = params.size();
  // Lower the WHERE clause to vectorized bytecode once per template; every
  // execution through this entry then skips both the compile and the
  // tree-walking evaluator. Uncovered predicates simply leave
  // has_where_program false and execute scalar.
  const Expr* where = nullptr;
  if (const auto* sel = std::get_if<SelectStatement>(&prepared->statement)) {
    where = sel->where.get();
  } else if (const auto* upd =
                 std::get_if<UpdateStatement>(&prepared->statement)) {
    where = upd->where.get();
  } else if (const auto* del =
                 std::get_if<DeleteStatement>(&prepared->statement)) {
    where = del->where.get();
  }
  if (where != nullptr &&
      CompilePredicate(*where, &prepared->where_program)) {
    prepared->has_where_program = true;
    ++stats_.programs_compiled;
  }

  lru_.push_front(Entry{fingerprint, std::move(prepared)});
  index_.emplace(std::move(fingerprint), lru_.begin());
  if (lru_.size() > capacity_) {
    if (has_last_ && last_it_ == std::prev(lru_.end())) has_last_ = false;
    index_.erase(lru_.back().fingerprint);
    lru_.pop_back();
    ++stats_.evictions;
  }
  RememberLast(sql, params);
  return PreparedCall{lru_.front().prepared, std::move(params)};
}

void StatementCache::RememberLast(const std::string& sql,
                                  const std::vector<Value>& params) {
  // Assignment reuses the buffers' capacity across calls.
  last_sql_ = sql;
  last_params_ = params;
  last_it_ = lru_.begin();
  has_last_ = true;
}

void StatementCache::Invalidate() {
  stats_.invalidations += static_cast<int64_t>(lru_.size());
  for (const Entry& e : lru_) {
    if (e.prepared->has_where_program) ++stats_.programs_invalidated;
  }
  index_.clear();
  lru_.clear();
  has_last_ = false;
}

std::vector<std::string> StatementCache::FingerprintsByRecency() const {
  std::vector<std::string> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) out.push_back(e.fingerprint);
  return out;
}

}  // namespace clouddb::db
