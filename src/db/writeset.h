#ifndef CLOUDDB_DB_WRITESET_H_
#define CLOUDDB_DB_WRITESET_H_

#include <string>
#include <vector>

#include "db/value.h"

namespace clouddb::db {

/// One physical row change captured on the master by row-based replication.
/// An insert carries the after image, a delete the before image, an update
/// both. Row images are full rows in schema column order — NULLs included —
/// so a slave can apply the delta without consulting the statement text.
struct RowOp {
  enum class Kind {
    kInsert,  // after  = the new row
    kDelete,  // before = the row as it existed
    kUpdate,  // before -> after, located by the before image
  };
  Kind kind = Kind::kInsert;
  std::string table;  // lower-cased catalog key
  Row before;
  Row after;
};

/// The row-based payload of one write statement inside a binlog event,
/// parallel to BinlogEvent::statements.
///
/// `covered` is the coverage/fallback rule's verdict: DDL and any statement
/// whose expressions contain a function call are *not* covered — function
/// calls (NOW_MICROS in particular) must re-evaluate per replica under
/// statement-based semantics, and the heartbeat delay measurement depends on
/// exactly that. Uncovered statements ship with empty `ops`; slaves apply
/// them through the ordinary parse-and-execute path.
struct StatementWriteset {
  bool covered = false;
  std::vector<RowOp> ops;
};

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_WRITESET_H_
