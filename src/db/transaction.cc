#include "db/transaction.h"

#include "common/str_util.h"
#include "common/status.h"

namespace clouddb::db {

Status LockManager::AcquireRead(int64_t session_id, const std::string& table) {
  TableLock& lock = locks_[table];
  if (lock.writer.has_value() && *lock.writer != session_id) {
    return Status::Aborted(
        StrFormat("table '%s' is write-locked by another session",
                  table.c_str()));
  }
  lock.readers.insert(session_id);
  return Status::Ok();
}

Status LockManager::AcquireWrite(int64_t session_id,
                                 const std::string& table) {
  TableLock& lock = locks_[table];
  if (lock.writer.has_value()) {
    if (*lock.writer == session_id) return Status::Ok();  // re-entrant
    return Status::Aborted(
        StrFormat("table '%s' is write-locked by another session",
                  table.c_str()));
  }
  for (int64_t reader : lock.readers) {
    if (reader != session_id) {
      return Status::Aborted(
          StrFormat("table '%s' is read-locked by another session",
                    table.c_str()));
    }
  }
  lock.writer = session_id;
  return Status::Ok();
}

void LockManager::ReleaseAll(int64_t session_id) {
  for (auto it = locks_.begin(); it != locks_.end();) {
    TableLock& lock = it->second;
    lock.readers.erase(session_id);
    if (lock.writer == session_id) lock.writer.reset();
    if (lock.readers.empty() && !lock.writer.has_value()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
}

bool LockManager::HoldsRead(int64_t session_id,
                            const std::string& table) const {
  auto it = locks_.find(table);
  return it != locks_.end() && it->second.readers.count(session_id) > 0;
}

bool LockManager::HoldsWrite(int64_t session_id,
                             const std::string& table) const {
  auto it = locks_.find(table);
  return it != locks_.end() && it->second.writer == session_id;
}

}  // namespace clouddb::db
