#ifndef CLOUDDB_DB_SQL_LEXER_H_
#define CLOUDDB_DB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "db/value.h"

namespace clouddb::db {

/// Token kinds produced by the SQL lexer.
enum class TokenType {
  kKeyword,     // recognized SQL keyword, normalized to upper case
  kIdentifier,  // table/column/index names
  kInteger,     // 64-bit integer literal
  kDouble,      // floating-point literal
  kString,      // 'single quoted', '' escapes a quote
  kSymbol,      // ( ) , * = != <> < <= > >= + - / .
  kParameter,   // `?` placeholder — never produced by Tokenize; synthesized
                // by the statement cache when masking literals (int_value
                // holds the parameter slot)
  kEnd,         // end of input
};

struct Token {
  TokenType type;
  std::string text;   // keyword/symbol spelling or identifier/literal text
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t offset = 0;  // byte offset in the source, for error messages

  bool IsKeyword(const char* kw) const;
  bool IsSymbol(const char* sym) const;
};

/// Tokenizes `sql`. Keywords are case-insensitive. Returns the token list
/// terminated by a kEnd token, or an error pointing at the offending byte.
Result<std::vector<Token>> Tokenize(const std::string& sql);

/// Fused single-pass fingerprint scan: the statement cache's hit path.
/// Produces exactly the fingerprint the cache would build by tokenizing and
/// masking (every token uppercased-if-keyword and emitted with one trailing
/// space; literals collapse to `?` with their values appended to `params` in
/// token order) — but without materializing a token vector, so a cache hit
/// costs one scan over the text. Lexical errors are byte-identical to
/// Tokenize's. Equivalence with the token-based construction is enforced by
/// tests (statement_cache_test).
Result<std::string> FingerprintSql(const std::string& sql,
                                   std::vector<Value>* params);

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_SQL_LEXER_H_
