#ifndef CLOUDDB_DB_VALUE_H_
#define CLOUDDB_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace clouddb::db {

/// Column data types supported by the engine.
enum class ValueType {
  kNull,
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeToString(ValueType t);

/// A single SQL value: NULL, 64-bit integer, double, or string.
/// Ordered: NULL < numerics < strings; int64 and double compare numerically.
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  // Inline: this is the innermost call of every index comparison.
  ValueType type() const {
    switch (data_.index()) {
      case 1:
        return ValueType::kInt64;
      case 2:
        return ValueType::kDouble;
      case 3:
        return ValueType::kString;
      default:
        return ValueType::kNull;
    }
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; must match `type()`.
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric coercion: int64 or double -> double. Fails on other types.
  Result<double> ToDouble() const;
  /// int64 passes through; double truncates. Fails on other types.
  Result<int64_t> ToInt64() const;

  /// SQL-literal rendering: NULL, 42, 3.14, 'escaped''string'.
  /// Round-trips through the lexer — this is how statement-based replication
  /// serializes evaluated values.
  std::string ToSqlLiteral() const;
  /// Human-readable rendering (strings unquoted).
  std::string ToString() const;

  /// Total ordering across types (see class comment). NULLs compare equal
  /// here (needed for index keys); SQL three-valued logic is handled by the
  /// executor before comparing.
  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const Value& a, const Value& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const Value& a, const Value& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const Value& a, const Value& b) {
    return Compare(a, b) >= 0;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return Compare(a, b) != 0;
  }

  /// -1 / 0 / +1 three-way comparison. Inline for the same reason as
  /// type(): B+Tree node searches binary-search through Value keys, so this
  /// runs a dozen times per index lookup.
  static int Compare(const Value& a, const Value& b) {
    ValueType ta = a.type();
    ValueType tb = b.type();
    if (ta == ValueType::kInt64 && tb == ValueType::kInt64) {
      int64_t x = a.AsInt64();
      int64_t y = b.AsInt64();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    return CompareSlow(a, b);
  }

  /// Stable 64-bit hash (for hash joins / duplicate detection in tests).
  uint64_t Hash() const;

 private:
  /// Mixed-type and non-integer orderings (see class comment).
  static int CompareSlow(const Value& a, const Value& b);

  std::variant<std::monostate, int64_t, double, std::string> data_;
};

/// A tuple of values; the engine's row representation.
using Row = std::vector<Value>;

/// Renders a row as "(v1, v2, ...)" using SQL literals.
std::string RowToString(const Row& row);

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_VALUE_H_
