#ifndef CLOUDDB_DB_SQL_PARSER_H_
#define CLOUDDB_DB_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "db/sql_ast.h"
#include "db/sql_lexer.h"

namespace clouddb::db {

/// Parses one SQL statement (an optional trailing ';' is accepted).
///
/// Supported grammar (keywords case-insensitive):
///
///   CREATE TABLE t (col TYPE [PRIMARY KEY | NOT NULL], ...)
///   CREATE INDEX idx ON t (col)
///   DROP TABLE t
///   TRUNCATE t                    -- or TRUNCATE TABLE t
///   INSERT INTO t [(cols)] VALUES (expr, ...)
///   SELECT * | COUNT(*) | cols FROM t [WHERE pred] [ORDER BY col [ASC|DESC]]
///       [LIMIT n]
///   UPDATE t SET col = expr [, ...] [WHERE pred]
///   DELETE FROM t [WHERE pred]
///   BEGIN | COMMIT | ROLLBACK
///
/// TYPE is INT | BIGINT | TIMESTAMP (64-bit int), DOUBLE,
/// TEXT | VARCHAR[(n)] (string).
///
/// pred is a conjunction: comparison (AND comparison)*, where comparison is
/// expr (= | != | <> | < | <= | > | >=) expr, or expr IS [NOT] NULL.
/// Expressions support +, -, *, / with the usual precedence, parentheses,
/// column references, literals, and function calls (e.g. NOW_MICROS()).
Result<Statement> ParseSql(const std::string& sql);

/// Parses an already-tokenized statement. Used by the statement cache, which
/// tokenizes once to fingerprint and then parses the literal-masked token
/// stream (kParameter tokens become Expr::kParameter placeholders; a
/// kParameter after LIMIT sets SelectStatement::limit_param).
Result<Statement> ParseTokens(std::vector<Token> tokens);

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_SQL_PARSER_H_
