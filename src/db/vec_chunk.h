#ifndef CLOUDDB_DB_VEC_CHUNK_H_
#define CLOUDDB_DB_VEC_CHUNK_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "db/value.h"
#include "db/vec_arena.h"

namespace clouddb::db {

/// Rows per execution batch. Large enough to amortize dispatch, small enough
/// that a chunk's working set (a few columns × 8 bytes × kVecChunkSize) stays
/// cache-resident.
inline constexpr size_t kVecChunkSize = 1024;

/// One materialized column of a chunk: a typed value array plus a null
/// bitmap, both arena-allocated with chunk lifetime. Exactly one of the data
/// pointers is set, chosen by `type` — the schema guarantees (CoerceRow) that
/// every stored value is either NULL or exactly the declared column type.
/// String lanes are views into the backing rows' own storage, valid for as
/// long as the rows are not mutated (the executor collects matches before
/// mutating, so chunk lifetime is always covered).
struct ColumnVector {
  ValueType type = ValueType::kNull;
  const int64_t* i64 = nullptr;           // type == kInt64
  const double* f64 = nullptr;            // type == kDouble
  const std::string_view* str = nullptr;  // type == kString
  const uint64_t* nulls = nullptr;        // bit i set = lane i is NULL
};

inline bool ColumnLaneIsNull(const ColumnVector& c, size_t lane) {
  return ((c.nulls[lane >> 6] >> (lane & 63)) & 1) != 0;
}

/// Materializes column `column` of `rows[0..len)` into arena storage.
/// `type` is the schema-declared column type. len <= kVecChunkSize.
ColumnVector MaterializeColumn(const Row* const* rows, size_t len,
                               size_t column, ValueType type, VecArena* arena);

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_VEC_CHUNK_H_
