#include "db/sql_ast.h"

#include "common/str_util.h"
#include "db/value.h"

namespace clouddb::db {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

const char* AggregateFnToString(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCountStar:
      return "COUNT";
    case AggregateFn::kMin:
      return "MIN";
    case AggregateFn::kMax:
      return "MAX";
    case AggregateFn::kSum:
      return "SUM";
    case AggregateFn::kAvg:
      return "AVG";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::MakeColumn(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumnRef;
  e->column = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::MakeFunction(
    std::string name, std::vector<std::unique_ptr<Expr>> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kFunctionCall;
  e->function = ToUpper(name);
  e->args = std::move(args);
  return e;
}

std::unique_ptr<Expr> Expr::MakeBinary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                       std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

std::unique_ptr<Expr> Expr::MakeParameter(size_t index) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kParameter;
  e->param_index = index;
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToSqlLiteral();
    case Kind::kColumnRef:
      return column;
    case Kind::kFunctionCall: {
      std::string out = function + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      out += ")";
      return out;
    }
    case Kind::kBinary:
      return StrFormat("(%s %s %s)", lhs->ToString().c_str(),
                       BinaryOpToString(op), rhs->ToString().c_str());
    case Kind::kIsNull:
      return StrFormat("(%s IS %sNULL)", lhs->ToString().c_str(),
                       is_null_negated ? "NOT " : "");
    case Kind::kNot:
      return StrFormat("(NOT %s)", lhs->ToString().c_str());
    case Kind::kInList: {
      std::string out = StrFormat("(%s %sIN (", lhs->ToString().c_str(),
                                  is_null_negated ? "NOT " : "");
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      out += "))";
      return out;
    }
    case Kind::kParameter:
      return "?";
  }
  return "?";
}

ExprPtr CloneExpr(const Expr& expr) {
  auto out = std::make_unique<Expr>();
  out->kind = expr.kind;
  out->literal = expr.literal;
  out->column = expr.column;
  out->function = expr.function;
  out->op = expr.op;
  out->is_null_negated = expr.is_null_negated;
  out->param_index = expr.param_index;
  for (const auto& arg : expr.args) out->args.push_back(CloneExpr(*arg));
  if (expr.lhs != nullptr) out->lhs = CloneExpr(*expr.lhs);
  if (expr.rhs != nullptr) out->rhs = CloneExpr(*expr.rhs);
  return out;
}

bool IsWriteStatement(const Statement& stmt) {
  return std::holds_alternative<CreateTableStatement>(stmt) ||
         std::holds_alternative<CreateIndexStatement>(stmt) ||
         std::holds_alternative<DropTableStatement>(stmt) ||
         std::holds_alternative<TruncateStatement>(stmt) ||
         std::holds_alternative<InsertStatement>(stmt) ||
         std::holds_alternative<UpdateStatement>(stmt) ||
         std::holds_alternative<DeleteStatement>(stmt);
}

bool IsTransactionControl(const Statement& stmt) {
  return std::holds_alternative<BeginStatement>(stmt) ||
         std::holds_alternative<CommitStatement>(stmt) ||
         std::holds_alternative<RollbackStatement>(stmt);
}

const char* StatementKindName(const Statement& stmt) {
  struct Visitor {
    const char* operator()(const CreateTableStatement&) { return "CREATE TABLE"; }
    const char* operator()(const CreateIndexStatement&) { return "CREATE INDEX"; }
    const char* operator()(const DropTableStatement&) { return "DROP TABLE"; }
    const char* operator()(const TruncateStatement&) { return "TRUNCATE"; }
    const char* operator()(const InsertStatement&) { return "INSERT"; }
    const char* operator()(const SelectStatement&) { return "SELECT"; }
    const char* operator()(const UpdateStatement&) { return "UPDATE"; }
    const char* operator()(const DeleteStatement&) { return "DELETE"; }
    const char* operator()(const BeginStatement&) { return "BEGIN"; }
    const char* operator()(const CommitStatement&) { return "COMMIT"; }
    const char* operator()(const RollbackStatement&) { return "ROLLBACK"; }
  };
  return std::visit(Visitor{}, stmt);
}

}  // namespace clouddb::db
