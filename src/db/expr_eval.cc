#include "db/expr_eval.h"

#include "common/str_util.h"
#include "common/result.h"
#include "common/status.h"
#include "db/functions.h"
#include "db/schema.h"
#include "db/sql_ast.h"
#include "db/value.h"

namespace clouddb::db {

namespace {

Result<Value> EvalArithmetic(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  // String concatenation via '+' is intentionally not supported (use CONCAT).
  bool both_int =
      a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64;
  if (both_int && op != BinaryOp::kDiv) {
    int64_t x = a.AsInt64();
    int64_t y = b.AsInt64();
    switch (op) {
      case BinaryOp::kAdd:
        return Value(x + y);
      case BinaryOp::kSub:
        return Value(x - y);
      case BinaryOp::kMul:
        return Value(x * y);
      default:
        break;
    }
  }
  CLOUDDB_ASSIGN_OR_RETURN(double x, a.ToDouble());
  CLOUDDB_ASSIGN_OR_RETURN(double y, b.ToDouble());
  switch (op) {
    case BinaryOp::kAdd:
      return Value(x + y);
    case BinaryOp::kSub:
      return Value(x - y);
    case BinaryOp::kMul:
      return Value(x * y);
    case BinaryOp::kDiv:
      if (y == 0.0) return Status::InvalidArgument("division by zero");
      return Value(x / y);
    default:
      return Status::Internal("not an arithmetic operator");
  }
}

Result<Value> EvalComparison(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();  // UNKNOWN
  int c = Value::Compare(a, b);
  bool r = false;
  switch (op) {
    case BinaryOp::kEq:
      r = c == 0;
      break;
    case BinaryOp::kNe:
      r = c != 0;
      break;
    case BinaryOp::kLt:
      r = c < 0;
      break;
    case BinaryOp::kLe:
      r = c <= 0;
      break;
    case BinaryOp::kGt:
      r = c > 0;
      break;
    case BinaryOp::kGe:
      r = c >= 0;
      break;
    default:
      return Status::Internal("not a comparison operator");
  }
  return Value(int64_t{r ? 1 : 0});
}

/// Truth value for three-valued logic: 0=false, 1=true, 2=unknown.
Result<int> Truth(const Value& v) {
  if (v.is_null()) return 2;
  CLOUDDB_ASSIGN_OR_RETURN(double d, v.ToDouble());
  return d != 0.0 ? 1 : 0;
}

/// Three-valued AND: false dominates, then NULL, then true.
Result<Value> EvalAnd(const Value& a, const Value& b) {
  CLOUDDB_ASSIGN_OR_RETURN(int ta, Truth(a));
  CLOUDDB_ASSIGN_OR_RETURN(int tb, Truth(b));
  if (ta == 0 || tb == 0) return Value(int64_t{0});
  if (ta == 2 || tb == 2) return Value::Null();
  return Value(int64_t{1});
}

/// Three-valued OR: true dominates, then NULL, then false.
Result<Value> EvalOr(const Value& a, const Value& b) {
  CLOUDDB_ASSIGN_OR_RETURN(int ta, Truth(a));
  CLOUDDB_ASSIGN_OR_RETURN(int tb, Truth(b));
  if (ta == 1 || tb == 1) return Value(int64_t{1});
  if (ta == 2 || tb == 2) return Value::Null();
  return Value(int64_t{0});
}

}  // namespace

Result<Value> EvaluateExpr(const Expr& expr, const Schema* schema,
                           const Row* row, const FunctionRegistry& functions,
                           const std::vector<Value>* params) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kParameter: {
      if (params == nullptr || expr.param_index >= params->size()) {
        return Status::Internal(
            StrFormat("unbound statement parameter ?%zu", expr.param_index));
      }
      return (*params)[expr.param_index];
    }
    case Expr::Kind::kColumnRef: {
      if (schema == nullptr || row == nullptr) {
        return Status::InvalidArgument(
            StrFormat("column '%s' referenced outside a row context",
                      expr.column.c_str()));
      }
      CLOUDDB_ASSIGN_OR_RETURN(size_t idx, schema->ColumnIndex(expr.column));
      return (*row)[idx];
    }
    case Expr::Kind::kFunctionCall: {
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const auto& arg : expr.args) {
        CLOUDDB_ASSIGN_OR_RETURN(Value v,
                                 EvaluateExpr(*arg, schema, row, functions, params));
        args.push_back(std::move(v));
      }
      return functions.Call(expr.function, args);
    }
    case Expr::Kind::kBinary: {
      CLOUDDB_ASSIGN_OR_RETURN(Value a,
                               EvaluateExpr(*expr.lhs, schema, row, functions, params));
      CLOUDDB_ASSIGN_OR_RETURN(Value b,
                               EvaluateExpr(*expr.rhs, schema, row, functions, params));
      switch (expr.op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
          return EvalArithmetic(expr.op, a, b);
        case BinaryOp::kAnd:
          return EvalAnd(a, b);
        case BinaryOp::kOr:
          return EvalOr(a, b);
        default:
          return EvalComparison(expr.op, a, b);
      }
    }
    case Expr::Kind::kIsNull: {
      CLOUDDB_ASSIGN_OR_RETURN(Value v,
                               EvaluateExpr(*expr.lhs, schema, row, functions, params));
      bool is_null = v.is_null();
      if (expr.is_null_negated) is_null = !is_null;
      return Value(int64_t{is_null ? 1 : 0});
    }
    case Expr::Kind::kNot: {
      CLOUDDB_ASSIGN_OR_RETURN(Value v,
                               EvaluateExpr(*expr.lhs, schema, row, functions, params));
      CLOUDDB_ASSIGN_OR_RETURN(int t, Truth(v));
      if (t == 2) return Value::Null();
      return Value(int64_t{t == 0 ? 1 : 0});
    }
    case Expr::Kind::kInList: {
      CLOUDDB_ASSIGN_OR_RETURN(Value needle,
                               EvaluateExpr(*expr.lhs, schema, row, functions, params));
      if (needle.is_null()) return Value::Null();
      bool saw_null = false;
      bool found = false;
      for (const auto& item : expr.args) {
        CLOUDDB_ASSIGN_OR_RETURN(
            Value candidate, EvaluateExpr(*item, schema, row, functions, params));
        if (candidate.is_null()) {
          saw_null = true;
          continue;
        }
        if (Value::Compare(needle, candidate) == 0) {
          found = true;
          break;
        }
      }
      // SQL semantics: x IN (...) is UNKNOWN when not found but the list
      // contains NULL; NOT IN flips through three-valued negation.
      if (found) return Value(int64_t{expr.is_null_negated ? 0 : 1});
      if (saw_null) return Value::Null();
      return Value(int64_t{expr.is_null_negated ? 1 : 0});
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<bool> EvaluatePredicate(const Expr& expr, const Schema* schema,
                               const Row* row,
                               const FunctionRegistry& functions,
                               const std::vector<Value>* params) {
  CLOUDDB_ASSIGN_OR_RETURN(Value v,
                           EvaluateExpr(expr, schema, row, functions, params));
  if (v.is_null()) return false;
  CLOUDDB_ASSIGN_OR_RETURN(double d, v.ToDouble());
  return d != 0.0;
}

bool IsRowIndependent(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
    case Expr::Kind::kParameter:
      return true;
    case Expr::Kind::kColumnRef:
      return false;
    case Expr::Kind::kFunctionCall:
      for (const auto& arg : expr.args) {
        if (!IsRowIndependent(*arg)) return false;
      }
      return true;
    case Expr::Kind::kBinary:
      return IsRowIndependent(*expr.lhs) && IsRowIndependent(*expr.rhs);
    case Expr::Kind::kIsNull:
    case Expr::Kind::kNot:
      return IsRowIndependent(*expr.lhs);
    case Expr::Kind::kInList:
      if (!IsRowIndependent(*expr.lhs)) return false;
      for (const auto& item : expr.args) {
        if (!IsRowIndependent(*item)) return false;
      }
      return true;
  }
  return false;
}

}  // namespace clouddb::db
