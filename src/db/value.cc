#include "db/value.h"

#include <cmath>
#include <cstdio>

#include "common/str_util.h"
#include "common/result.h"
#include "common/status.h"

namespace clouddb::db {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      // Spelled as the SQL type so Schema::ToString round-trips through the
      // parser (used when recreating a schema from a live table).
      return "TEXT";
  }
  return "?";
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return Status::InvalidArgument(
          StrFormat("cannot coerce %s to DOUBLE", ValueTypeToString(type())));
  }
}

Result<int64_t> Value::ToInt64() const {
  switch (type()) {
    case ValueType::kInt64:
      return AsInt64();
    case ValueType::kDouble:
      return static_cast<int64_t>(AsDouble());
    default:
      return Status::InvalidArgument(
          StrFormat("cannot coerce %s to INT", ValueTypeToString(type())));
  }
}

std::string Value::ToSqlLiteral() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return StrFormat("%lld", static_cast<long long>(AsInt64()));
    case ValueType::kDouble: {
      // %.17g round-trips IEEE-754 doubles exactly.
      std::string s = StrFormat("%.17g", AsDouble());
      // Ensure the literal re-lexes as a double, not an integer.
      if (s.find_first_of(".eEnN") == std::string::npos) s += ".0";
      return s;
    }
    case ValueType::kString: {
      std::string out = "'";
      for (char c : AsString()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
  }
  return "NULL";
}

std::string Value::ToString() const {
  if (type() == ValueType::kString) return AsString();
  return ToSqlLiteral();
}

int Value::CompareSlow(const Value& a, const Value& b) {
  ValueType ta = a.type();
  ValueType tb = b.type();
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull:
        return 0;
      case ValueType::kInt64:
      case ValueType::kDouble:
        return 1;
      case ValueType::kString:
        return 2;
    }
    return 0;
  };
  int ra = rank(ta);
  int rb = rank(tb);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;  // NULL == NULL for ordering purposes
    case 1: {
      if (ta == ValueType::kInt64 && tb == ValueType::kInt64) {
        int64_t x = a.AsInt64();
        int64_t y = b.AsInt64();
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      double x = ta == ValueType::kInt64 ? static_cast<double>(a.AsInt64())
                                         : a.AsDouble();
      double y = tb == ValueType::kInt64 ? static_cast<double>(b.AsInt64())
                                         : b.AsDouble();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    default: {
      int c = a.AsString().compare(b.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

uint64_t Value::Hash() const {
  auto mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return h;
  };
  switch (type()) {
    case ValueType::kNull:
      return 0xDEADBEEFull;
    case ValueType::kInt64:
      return mix(1, static_cast<uint64_t>(AsInt64()));
    case ValueType::kDouble: {
      // Hash doubles through their numeric value so 1 and 1.0 collide
      // (they compare equal).
      double d = AsDouble();
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return mix(1, static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return mix(2, bits);
    }
    case ValueType::kString: {
      uint64_t h = 1469598103934665603ull;  // FNV-1a
      for (char c : AsString()) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
      }
      return mix(3, h);
    }
  }
  return 0;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToSqlLiteral();
  }
  out += ")";
  return out;
}

}  // namespace clouddb::db
