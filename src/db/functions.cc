#include "db/functions.h"

#include <cmath>

#include "common/str_util.h"
#include "common/result.h"
#include "common/status.h"
#include "db/value.h"

namespace clouddb::db {

namespace {

Status ArityError(const char* name, size_t want, size_t got) {
  return Status::InvalidArgument(
      StrFormat("%s expects %zu argument(s), got %zu", name, want, got));
}

Result<Value> FnAbs(const std::vector<Value>& args) {
  if (args.size() != 1) return ArityError("ABS", 1, args.size());
  if (args[0].is_null()) return Value::Null();
  if (args[0].type() == ValueType::kInt64) {
    int64_t v = args[0].AsInt64();
    return Value(v < 0 ? -v : v);
  }
  CLOUDDB_ASSIGN_OR_RETURN(double d, args[0].ToDouble());
  return Value(std::fabs(d));
}

Result<Value> FnMod(const std::vector<Value>& args) {
  if (args.size() != 2) return ArityError("MOD", 2, args.size());
  if (args[0].is_null() || args[1].is_null()) return Value::Null();
  CLOUDDB_ASSIGN_OR_RETURN(int64_t a, args[0].ToInt64());
  CLOUDDB_ASSIGN_OR_RETURN(int64_t b, args[1].ToInt64());
  if (b == 0) return Status::InvalidArgument("MOD by zero");
  return Value(a % b);
}

Result<Value> FnLength(const std::vector<Value>& args) {
  if (args.size() != 1) return ArityError("LENGTH", 1, args.size());
  if (args[0].is_null()) return Value::Null();
  if (args[0].type() != ValueType::kString) {
    return Status::InvalidArgument("LENGTH expects a string");
  }
  return Value(static_cast<int64_t>(args[0].AsString().size()));
}

Result<Value> FnConcat(const std::vector<Value>& args) {
  std::string out;
  for (const Value& v : args) {
    if (v.is_null()) return Value::Null();
    out += v.ToString();
  }
  return Value(std::move(out));
}

}  // namespace

FunctionRegistry::FunctionRegistry(std::function<int64_t()> now_micros) {
  Register("ABS", FnAbs);
  Register("MOD", FnMod);
  Register("LENGTH", FnLength);
  Register("CONCAT", FnConcat);
  SetTimeSource(std::move(now_micros));
}

void FunctionRegistry::Register(const std::string& name, Fn fn) {
  fns_[ToUpper(name)] = std::move(fn);
}

Result<Value> FunctionRegistry::Call(const std::string& name,
                                     const std::vector<Value>& args) const {
  auto it = fns_.find(ToUpper(name));
  if (it == fns_.end()) {
    return Status::NotFound(StrFormat("no function named %s", name.c_str()));
  }
  return it->second(args);
}

bool FunctionRegistry::Has(const std::string& name) const {
  return fns_.count(ToUpper(name)) > 0;
}

void FunctionRegistry::SetTimeSource(std::function<int64_t()> now_micros) {
  auto src = now_micros ? std::move(now_micros) : [] { return int64_t{0}; };
  Register("NOW_MICROS",
           [src = std::move(src)](const std::vector<Value>& args)
               -> Result<Value> {
             if (!args.empty()) return ArityError("NOW_MICROS", 0, args.size());
             return Value(src());
           });
}

}  // namespace clouddb::db
