#include "db/vec_expr.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/str_util.h"
#include "db/schema.h"
#include "db/sql_ast.h"
#include "db/value.h"
#include "db/vec_arena.h"
#include "db/vec_chunk.h"

namespace clouddb::db {

namespace {

// Kleene truth lanes: 0 = false, 1 = unknown, 2 = true.
constexpr uint8_t kFalse = 0;
constexpr uint8_t kUnknown = 1;
constexpr uint8_t kTrue = 2;

bool IsComparisonOp(BinaryOp op) {
  return op == BinaryOp::kEq || op == BinaryOp::kNe || op == BinaryOp::kLt ||
         op == BinaryOp::kLe || op == BinaryOp::kGt || op == BinaryOp::kGe;
}

VecCmp ToVecCmp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return VecCmp::kEq;
    case BinaryOp::kNe:
      return VecCmp::kNe;
    case BinaryOp::kLt:
      return VecCmp::kLt;
    case BinaryOp::kLe:
      return VecCmp::kLe;
    case BinaryOp::kGt:
      return VecCmp::kGt;
    default:
      return VecCmp::kGe;
  }
}

/// Mirror for `const op column`: `5 < col` means `col > 5`.
VecCmp FlipCmp(VecCmp cmp) {
  switch (cmp) {
    case VecCmp::kLt:
      return VecCmp::kGt;
    case VecCmp::kLe:
      return VecCmp::kGe;
    case VecCmp::kGt:
      return VecCmp::kLt;
    case VecCmp::kGe:
      return VecCmp::kLe;
    default:
      return cmp;  // kEq / kNe are symmetric
  }
}

bool IsConstOperand(const Expr& e) {
  return e.kind == Expr::Kind::kLiteral || e.kind == Expr::Kind::kParameter;
}

/// The operand under a unary minus, or null. The parser renders `-x` as
/// `0 - x`, so the shape is kSub with an int64-zero literal on the left. A
/// literal operand must already be numeric (a folded `-'a'` would need the
/// scalar path's string-to-double conversion and its error text); a
/// parameter operand is checked at bind time instead, when its value is
/// known.
const Expr* NegatedConstOperand(const Expr& e) {
  if (e.kind != Expr::Kind::kBinary || e.op != BinaryOp::kSub) return nullptr;
  if (e.lhs->kind != Expr::Kind::kLiteral ||
      e.lhs->literal.type() != ValueType::kInt64 ||
      e.lhs->literal.AsInt64() != 0) {
    return nullptr;
  }
  if (e.rhs->kind == Expr::Kind::kLiteral) {
    ValueType t = e.rhs->literal.type();
    if (t != ValueType::kInt64 && t != ValueType::kDouble) return nullptr;
    return e.rhs.get();
  }
  if (e.rhs->kind == Expr::Kind::kParameter) return e.rhs.get();
  return nullptr;
}

bool IsFoldableConst(const Expr& e) {
  return IsConstOperand(e) || NegatedConstOperand(e) != nullptr;
}

uint16_t InternColumn(VecProgram* p, std::string_view name) {
  for (size_t i = 0; i < p->columns.size(); ++i) {
    // NOLINTNEXTLINE(clouddb-narrowing): column count is capped by the 0xFFFF slot-overflow disengage in CompileNode
    if (p->columns[i] == name) return static_cast<uint16_t>(i);
  }
  p->columns.push_back(name);
  // NOLINTNEXTLINE(clouddb-narrowing): column count is capped by the 0xFFFF slot-overflow disengage in CompileNode
  return static_cast<uint16_t>(p->columns.size() - 1);
}

uint16_t InternConst(VecProgram* p, const Expr& e) {
  VecProgram::ConstRef ref;
  const Expr* operand = &e;
  if (const Expr* negated = NegatedConstOperand(e)) {
    operand = negated;
    ref.negate = true;
  }
  if (operand->kind == Expr::Kind::kLiteral) {
    ref.literal = &operand->literal;
  } else {
    ref.param = static_cast<uint32_t>(operand->param_index);
  }
  p->consts.push_back(ref);
  // NOLINTNEXTLINE(clouddb-narrowing): const-slot count is capped by the 0xFFFF slot-overflow disengage in CompileNode
  return static_cast<uint16_t>(p->consts.size() - 1);
}

/// Compiles one node to postfix, tracking stack depth for max_stack.
/// Returns false on any uncovered shape (whole-program disengage).
bool CompileNode(const Expr& e, VecProgram* p, std::vector<VecOp>* ops,
                 size_t* depth) {
  // Slot operands are uint16_t; a predicate big enough to overflow them
  // cannot realistically parse, but guard anyway.
  if (p->columns.size() >= 0xFFFF || p->consts.size() >= 0xFFFF) return false;
  switch (e.kind) {
    case Expr::Kind::kBinary: {
      if (e.op == BinaryOp::kAnd || e.op == BinaryOp::kOr) {
        if (!CompileNode(*e.lhs, p, ops, depth)) return false;
        if (!CompileNode(*e.rhs, p, ops, depth)) return false;
        VecOp op;
        op.code = e.op == BinaryOp::kAnd ? VecOp::Code::kAnd : VecOp::Code::kOr;
        ops->push_back(op);
        --*depth;
        return true;
      }
      if (!IsComparisonOp(e.op)) return false;
      VecOp op;
      op.code = VecOp::Code::kCmpColConst;
      if (e.lhs->kind == Expr::Kind::kColumnRef && IsFoldableConst(*e.rhs)) {
        op.cmp = ToVecCmp(e.op);
        op.col = InternColumn(p, e.lhs->column);
        op.arg = InternConst(p, *e.rhs);
      } else if (e.rhs->kind == Expr::Kind::kColumnRef &&
                 IsFoldableConst(*e.lhs)) {
        op.cmp = FlipCmp(ToVecCmp(e.op));
        op.col = InternColumn(p, e.rhs->column);
        op.arg = InternConst(p, *e.lhs);
      } else {
        return false;  // column-to-column, arithmetic, function call, ...
      }
      ops->push_back(op);
      ++*depth;
      if (*depth > p->max_stack) p->max_stack = *depth;
      return true;
    }
    case Expr::Kind::kIsNull: {
      if (e.lhs->kind != Expr::Kind::kColumnRef) return false;
      VecOp op;
      op.code = VecOp::Code::kIsNullCol;
      op.negated = e.is_null_negated;
      op.col = InternColumn(p, e.lhs->column);
      ops->push_back(op);
      ++*depth;
      if (*depth > p->max_stack) p->max_stack = *depth;
      return true;
    }
    case Expr::Kind::kNot: {
      if (!CompileNode(*e.lhs, p, ops, depth)) return false;
      VecOp op;
      op.code = VecOp::Code::kNot;
      ops->push_back(op);
      return true;
    }
    default:
      return false;
  }
}

/// Splits the predicate at its top-level ANDs. Safe because compiled
/// conjuncts can never error (coverage rule) and three-valued AND is true
/// iff every operand is true — filtering by each conjunct in turn yields
/// exactly the rows the full AND accepts.
void CollectConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == Expr::Kind::kBinary && e.op == BinaryOp::kAnd) {
    CollectConjuncts(*e.lhs, out);
    CollectConjuncts(*e.rhs, out);
    return;
  }
  out->push_back(&e);
}

inline uint8_t CmpTruth(VecCmp cmp, int c) {
  bool r = false;
  switch (cmp) {
    case VecCmp::kEq:
      r = c == 0;
      break;
    case VecCmp::kNe:
      r = c != 0;
      break;
    case VecCmp::kLt:
      r = c < 0;
      break;
    case VecCmp::kLe:
      r = c <= 0;
      break;
    case VecCmp::kGt:
      r = c > 0;
      break;
    case VecCmp::kGe:
      r = c >= 0;
      break;
  }
  return r ? kTrue : kFalse;
}

/// Three-way compares matching Value::Compare exactly (including the
/// NaN-compares-equal behavior of the double path).
inline int ThreeWayI64(int64_t x, int64_t y) {
  return x < y ? -1 : (x > y ? 1 : 0);
}
inline int ThreeWayF64(double x, double y) {
  return x < y ? -1 : (x > y ? 1 : 0);
}
inline int ThreeWayStr(std::string_view x, std::string_view y) {
  int c = x.compare(y);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

/// cmp(column lane, constant) for the selected lanes. NULL on either side
/// yields unknown; otherwise the kernel is specialized on the (column type,
/// constant type) pair, with cross-kind pairs reduced to a constant
/// three-way result from Value::Compare's kind ranks (numerics < strings).
void EvalCmpColConst(const ColumnVector& col, const Value& k, VecCmp cmp,
                     const uint32_t* sel, size_t n, uint8_t* t) {
  ValueType kt = k.type();
  if (kt == ValueType::kNull) {
    for (size_t j = 0; j < n; ++j) t[j] = kUnknown;
    return;
  }
  switch (col.type) {
    case ValueType::kInt64: {
      if (kt == ValueType::kInt64) {
        int64_t kv = k.AsInt64();
        for (size_t j = 0; j < n; ++j) {
          uint32_t lane = sel[j];
          t[j] = ColumnLaneIsNull(col, lane)
                     ? kUnknown
                     : CmpTruth(cmp, ThreeWayI64(col.i64[lane], kv));
        }
      } else if (kt == ValueType::kDouble) {
        double kv = k.AsDouble();
        for (size_t j = 0; j < n; ++j) {
          uint32_t lane = sel[j];
          t[j] = ColumnLaneIsNull(col, lane)
                     ? kUnknown
                     : CmpTruth(cmp, ThreeWayF64(
                                         static_cast<double>(col.i64[lane]),
                                         kv));
        }
      } else {
        uint8_t r = CmpTruth(cmp, -1);  // numeric < string for all lanes
        for (size_t j = 0; j < n; ++j) {
          t[j] = ColumnLaneIsNull(col, sel[j]) ? kUnknown : r;
        }
      }
      break;
    }
    case ValueType::kDouble: {
      if (kt == ValueType::kString) {
        uint8_t r = CmpTruth(cmp, -1);
        for (size_t j = 0; j < n; ++j) {
          t[j] = ColumnLaneIsNull(col, sel[j]) ? kUnknown : r;
        }
        break;
      }
      double kv = kt == ValueType::kInt64 ? static_cast<double>(k.AsInt64())
                                          : k.AsDouble();
      for (size_t j = 0; j < n; ++j) {
        uint32_t lane = sel[j];
        t[j] = ColumnLaneIsNull(col, lane)
                   ? kUnknown
                   : CmpTruth(cmp, ThreeWayF64(col.f64[lane], kv));
      }
      break;
    }
    case ValueType::kString: {
      if (kt != ValueType::kString) {
        uint8_t r = CmpTruth(cmp, 1);  // string > numeric for all lanes
        for (size_t j = 0; j < n; ++j) {
          t[j] = ColumnLaneIsNull(col, sel[j]) ? kUnknown : r;
        }
        break;
      }
      std::string_view kv(k.AsString());
      for (size_t j = 0; j < n; ++j) {
        uint32_t lane = sel[j];
        t[j] = ColumnLaneIsNull(col, lane)
                   ? kUnknown
                   : CmpTruth(cmp, ThreeWayStr(col.str[lane], kv));
      }
      break;
    }
    case ValueType::kNull:
      for (size_t j = 0; j < n; ++j) t[j] = kUnknown;
      break;
  }
}

void EvalIsNull(const ColumnVector& col, bool negated, const uint32_t* sel,
                size_t n, uint8_t* t) {
  uint8_t when_null = negated ? kFalse : kTrue;
  uint8_t when_set = negated ? kTrue : kFalse;
  for (size_t j = 0; j < n; ++j) {
    t[j] = ColumnLaneIsNull(col, sel[j]) ? when_null : when_set;
  }
}

}  // namespace

bool CompilePredicate(const Expr& where, VecProgram* out) {
  VecProgram p;
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(where, &conjuncts);
  for (const Expr* c : conjuncts) {
    std::vector<VecOp> ops;
    size_t depth = 0;
    if (!CompileNode(*c, &p, &ops, &depth)) return false;
    p.conjuncts.push_back(std::move(ops));
  }
  *out = std::move(p);
  return true;
}

bool BindProgram(const VecProgram& program, const Schema& schema,
                 const std::vector<Value>* params, VecBinding* out) {
  out->program = &program;
  out->col_index.clear();
  out->col_type.clear();
  out->consts.clear();
  const auto& cols = schema.columns();
  for (std::string_view name : program.columns) {
    size_t idx = cols.size();
    for (size_t i = 0; i < cols.size(); ++i) {
      if (EqualsIgnoreCase(cols[i].name, name)) {
        idx = i;
        break;
      }
    }
    if (idx == cols.size()) return false;
    // NOLINTNEXTLINE(clouddb-narrowing): idx < cols.size() and schema width is nowhere near 2^32
    out->col_index.push_back(static_cast<uint32_t>(idx));
    out->col_type.push_back(cols[idx].type);
  }
  out->owned.clear();
  out->owned.reserve(program.consts.size());
  for (const VecProgram::ConstRef& ref : program.consts) {
    const Value* v = ref.literal;
    if (v == nullptr) {
      if (params == nullptr || ref.param >= params->size()) return false;
      v = &(*params)[ref.param];
    }
    if (ref.negate) {
      // Fold `0 - v` exactly as the scalar arithmetic does: int64 stays
      // int64, everything else numeric goes through double. Non-numeric
      // values (a parameter bound to a string) refuse to bind so the
      // scalar path produces its usual conversion behavior.
      if (v->type() == ValueType::kInt64) {
        out->owned.push_back(Value(int64_t{0} - v->AsInt64()));
      } else if (v->type() == ValueType::kDouble) {
        out->owned.push_back(Value(0.0 - v->AsDouble()));
      } else {
        return false;
      }
      v = &out->owned.back();
    }
    out->consts.push_back(v);
  }
  return true;
}

size_t VecFilterChunk(const VecBinding& binding, const Row* const* rows,
                      size_t len, uint32_t* sel, VecArena* arena) {
  const VecProgram& p = *binding.program;
  assert(len <= kVecChunkSize);  // documented caller contract (vec_chunk.h)
  size_t ncols = p.columns.size();
  ColumnVector* cols = arena->AllocateArray<ColumnVector>(ncols);
  for (size_t i = 0; i < ncols; ++i) {
    cols[i] = MaterializeColumn(rows, len, binding.col_index[i],
                                binding.col_type[i], arena);
  }
  uint8_t** stack = arena->AllocateArray<uint8_t*>(p.max_stack);
  size_t n = len;
  for (size_t i = 0; i < len; ++i) sel[i] = static_cast<uint32_t>(i);
  for (const std::vector<VecOp>& conjunct : p.conjuncts) {
    if (n == 0) break;  // short-circuit: selection already empty
    size_t sp = 0;
    for (const VecOp& op : conjunct) {
      switch (op.code) {
        case VecOp::Code::kCmpColConst: {
          uint8_t* t = arena->AllocateArray<uint8_t>(n);
          // NOLINTNEXTLINE(clouddb-bounds): op.col < ncols: BindProgram resolved every column reference before execution
          EvalCmpColConst(cols[op.col], *binding.consts[op.arg], op.cmp, sel,
                          n, t);
          // NOLINTNEXTLINE(clouddb-bounds): sp < max_stack: CompileNode tracked postfix depth and sized the stack
          stack[sp++] = t;
          break;
        }
        case VecOp::Code::kIsNullCol: {
          uint8_t* t = arena->AllocateArray<uint8_t>(n);
          // NOLINTNEXTLINE(clouddb-bounds): op.col < ncols: BindProgram resolved every column reference before execution
          EvalIsNull(cols[op.col], op.negated, sel, n, t);
          // NOLINTNEXTLINE(clouddb-bounds): sp < max_stack postfix-depth invariant from CompileNode
          stack[sp++] = t;
          break;
        }
        case VecOp::Code::kAnd: {
          // NOLINTNEXTLINE(clouddb-bounds): binary op implies sp >= 2: CompileNode rejects underflowing programs
          uint8_t* b = stack[--sp];
          // NOLINTNEXTLINE(clouddb-bounds): binary op implies sp >= 2 after the pop above
          uint8_t* a = stack[sp - 1];
          for (size_t j = 0; j < n; ++j) {
            if (b[j] < a[j]) a[j] = b[j];
          }
          break;
        }
        case VecOp::Code::kOr: {
          // NOLINTNEXTLINE(clouddb-bounds): binary op implies sp >= 2: CompileNode rejects underflowing programs
          uint8_t* b = stack[--sp];
          // NOLINTNEXTLINE(clouddb-bounds): binary op implies sp >= 2 after the pop above
          uint8_t* a = stack[sp - 1];
          for (size_t j = 0; j < n; ++j) {
            if (b[j] > a[j]) a[j] = b[j];
          }
          break;
        }
        case VecOp::Code::kNot: {
          // NOLINTNEXTLINE(clouddb-bounds): unary op implies sp >= 1: CompileNode rejects underflowing programs
          uint8_t* a = stack[sp - 1];
          for (size_t j = 0; j < n; ++j) a[j] = kTrue - a[j];
          break;
        }
      }
    }
    // NOLINTNEXTLINE(clouddb-bounds): a conjunct evaluates to exactly one mask: sp == 1 here
    const uint8_t* t = stack[sp - 1];
    size_t m = 0;
    for (size_t j = 0; j < n; ++j) {
      // NOLINTNEXTLINE(clouddb-bounds): compaction write: m <= j < n
      if (t[j] == kTrue) sel[m++] = sel[j];
    }
    n = m;
  }
  return n;
}

}  // namespace clouddb::db
