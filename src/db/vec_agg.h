#ifndef CLOUDDB_DB_VEC_AGG_H_
#define CLOUDDB_DB_VEC_AGG_H_

#include <cstddef>
#include <cstdint>

#include "db/value.h"
#include "db/vec_chunk.h"

namespace clouddb::db {

/// Running state for one aggregate item, fed one chunk at a time. The
/// accumulators mirror the scalar executor's exactly (same types, same
/// accumulation order) so the final values are bit-identical: SUM over an
/// int64 column stays in int64_t, doubles accumulate left to right, and
/// MIN/MAX keep the FIRST best row under strict-improvement comparison.
struct VecAggState {
  int64_t count = 0;
  int64_t int_sum = 0;
  double dbl_sum = 0.0;
  /// MIN/MAX carrier: the row holding the current best value. The final
  /// Value copy happens in the executor, keeping kernels allocation-free.
  const Row* best_row = nullptr;
};

/// SUM/AVG accumulation over the selected lanes of a materialized column.
/// NULL lanes are skipped; non-null lanes bump `count` and add into
/// `int_sum` (int64 column) or `dbl_sum` (double column).
void VecAccumulateSum(const ColumnVector& col, const uint32_t* sel, size_t n,
                      VecAggState* state);

/// MIN/MAX accumulation. `rows` backs the column's lanes; `column` is the
/// schema column index used when comparing against the carried best row.
void VecAccumulateMinMax(const ColumnVector& col, const Row* const* rows,
                         const uint32_t* sel, size_t n, size_t column,
                         bool is_max, VecAggState* state);

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_VEC_AGG_H_
