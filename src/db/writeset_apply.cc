#include "db/writeset_apply.h"

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/str_util.h"
#include "db/database.h"
#include "db/table.h"
#include "db/transaction.h"
#include "common/result.h"
#include "db/writeset.h"

namespace clouddb::db {

namespace {

/// The op that undoes `op`: insert <-> delete, update swaps its images.
/// Inverses are themselves RowOps, so rollback reuses ApplyRowDelta.
RowOp InverseOf(const RowOp& op) {
  RowOp inv;
  inv.table = op.table;
  switch (op.kind) {
    case RowOp::Kind::kInsert:
      inv.kind = RowOp::Kind::kDelete;
      inv.before = op.after;
      break;
    case RowOp::Kind::kDelete:
      inv.kind = RowOp::Kind::kInsert;
      inv.after = op.before;
      break;
    case RowOp::Kind::kUpdate:
      inv.kind = RowOp::Kind::kUpdate;
      inv.before = op.after;
      inv.after = op.before;
      break;
  }
  return inv;
}

}  // namespace

Result<int64_t> ApplyStatementWriteset(Database* db, Session* session,
                                       const StatementWriteset& ws) {
  if (!ws.covered) {
    return Status::FailedPrecondition(
        "writeset not covered; apply the statement text instead");
  }
  LockManager& locks = db->lock_manager();
  // Almost every statement touches one table, so memoize the last
  // name -> Table* resolution instead of paying a catalog map lookup (and a
  // lock-table lookup) per row op. A short equal-string compare is far
  // cheaper than either, and this path runs once per replicated row.
  const std::string* cached_name = nullptr;
  Table* cached_table = nullptr;
  auto resolve = [&](const std::string& name) -> Table* {
    if (cached_name == nullptr || *cached_name != name) {
      cached_name = &name;
      cached_table = db->GetTable(name);
    }
    return cached_table;
  };
  // Lock every touched table up front (no-wait 2PL, like statement apply).
  // AcquireWrite is re-entrant, so consecutive ops on the same table skip it.
  const std::string* last_locked = nullptr;
  for (const RowOp& op : ws.ops) {
    if (last_locked != nullptr && *last_locked == op.table) continue;
    Status lock_st = locks.AcquireWrite(session->id(), op.table);
    if (!lock_st.ok()) {
      locks.ReleaseAll(session->id());
      return lock_st;
    }
    last_locked = &op.table;
  }
  // Ops apply in order, so a plain count of successes is enough to drive the
  // unwind below — no per-statement bookkeeping allocation.
  size_t applied = 0;
  Status st = Status::Ok();
  for (const RowOp& op : ws.ops) {
    Table* table = resolve(op.table);
    if (table == nullptr) {
      st = Status::NotFound(
          StrFormat("no table named '%s'", op.table.c_str()));
      break;
    }
    st = table->ApplyRowDelta(op);
    if (!st.ok()) break;
    ++applied;
  }
  if (!st.ok()) {
    // Unwind the partially applied statement so it stays atomic, as the
    // executor's undo log makes statement apply.
    for (size_t i = applied; i-- > 0;) {
      Table* table = resolve(ws.ops[i].table);
      if (table != nullptr) {
        Status undone = table->ApplyRowDelta(InverseOf(ws.ops[i]));
        (void)undone;  // a failing inverse means the replica already diverged
      }
    }
    locks.ReleaseAll(session->id());
    return st;
  }
  locks.ReleaseAll(session->id());
  return static_cast<int64_t>(ws.ops.size());
}

}  // namespace clouddb::db
