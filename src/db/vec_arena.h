#ifndef CLOUDDB_DB_VEC_ARENA_H_
#define CLOUDDB_DB_VEC_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace clouddb::db {

/// Bump allocator for chunk-lifetime vectorized-execution buffers: column
/// vectors, null bitmaps, selection vectors, and truth stacks.
///
/// Allocation is a pointer bump into a chain of large blocks; there is no
/// per-object free. Reset() rewinds every block without returning memory to
/// the heap, so a steady workload touches the system allocator only until
/// its high-water mark is reached — after warmup the per-chunk allocation
/// cost is a handful of arithmetic ops. Everything placed here must be
/// trivially destructible (enforced by AllocateArray): the arena never runs
/// destructors.
class VecArena {
 public:
  VecArena() = default;

  VecArena(const VecArena&) = delete;
  VecArena& operator=(const VecArena&) = delete;

  /// Pointer to `bytes` of storage aligned to `align` (a power of two no
  /// larger than alignof(max_align_t)). Never returns nullptr.
  void* Allocate(size_t bytes, size_t align) {
    if (bytes == 0) bytes = 1;
    while (active_ < blocks_.size()) {
      Block& b = blocks_[active_];
      size_t off = (b.used + align - 1) & ~(align - 1);
      if (off + bytes <= b.size) {
        b.used = off + bytes;
        return b.data.get() + off;
      }
      ++active_;
    }
    size_t size = bytes + align;
    if (size < kMinBlockBytes) size = kMinBlockBytes;
    Block b;
    b.data = std::make_unique<unsigned char[]>(size);
    b.size = size;
    blocks_.push_back(std::move(b));
    active_ = blocks_.size() - 1;
    Block& nb = blocks_[active_];
    size_t off = (nb.used + align - 1) & ~(align - 1);
    nb.used = off + bytes;
    return nb.data.get() + off;
  }

  /// Uninitialized storage for `n` objects of trivially-destructible T.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is never destructed");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Invalidates every outstanding allocation; keeps block capacity so the
  /// next chunk reuses the same memory.
  void Reset() {
    for (Block& b : blocks_) b.used = 0;
    active_ = 0;
  }

  /// Total bytes held (capacity, not live allocations) — test/bench hook.
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  static constexpr size_t kMinBlockBytes = 64 * 1024;

  std::vector<Block> blocks_;
  size_t active_ = 0;  // blocks_[active_] is the current bump target
};

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_VEC_ARENA_H_
