#ifndef CLOUDDB_DB_TABLE_H_
#define CLOUDDB_DB_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "db/bplus_tree.h"
#include "db/schema.h"
#include "db/value.h"
#include "db/writeset.h"

namespace clouddb::db {

/// Internal row identifier; stable for the life of the row.
using RowId = int64_t;

/// Access paths the executor can choose for a statement.
enum class AccessPathKind { kPkEq, kIndexEq, kIndexRange, kTableScan };

/// Memoized access-path decision for one WHERE predicate shape — the
/// ordered (column, op) list of index-usable constraints. Literal values are
/// deliberately absent from both key and hint: NULL-valued comparisons are
/// dropped before the shape is built, and every value-dependent decision
/// (predicate subsumption, scan bounds) is recomputed per execution.
struct PlanHint {
  AccessPathKind kind = AccessPathKind::kTableScan;
  /// kPkEq/kIndexEq: index of the chosen constraint in the extracted list;
  /// kIndexRange: the column index to range-scan. Unused for kTableScan.
  size_t chosen = 0;
  std::string plan;        // ExecResult.plan label, e.g. "pk_eq(id)"
  std::string ordered_by;  // ExecResult.scan_ordered_by
};

/// Composite key for secondary (non-unique) indexes: the indexed value plus
/// the row id as a tiebreaker, making every key unique in the B+Tree.
struct SecondaryKey {
  Value value;
  RowId row_id;

  friend bool operator<(const SecondaryKey& a, const SecondaryKey& b) {
    int c = Value::Compare(a.value, b.value);
    if (c != 0) return c < 0;
    return a.row_id < b.row_id;
  }
};

/// A heap of rows plus indexes.
///
/// - Rows live in an id-addressed store; RowIds are assigned monotonically.
/// - If the schema declares a PRIMARY KEY, a unique B+Tree index over it is
///   maintained automatically and uniqueness is enforced.
/// - Any column can get a secondary (non-unique) B+Tree index.
class Table {
 public:
  Table(std::string name, Schema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }

  /// Validates and inserts `row`; enforces PK uniqueness. Returns the new
  /// RowId.
  Result<RowId> Insert(Row row);

  /// Deletes by RowId. Returns NotFound if absent.
  Status Delete(RowId id);

  /// Replaces the row's contents (all indexes updated). The primary key may
  /// change as long as it stays unique.
  Status Update(RowId id, Row new_row);

  /// Re-inserts a previously deleted row under its original RowId (used by
  /// transaction rollback). Fails if the id is live or the primary key
  /// duplicates a live row.
  Status RestoreRow(RowId id, Row row);

  /// Row-based replication's direct-apply path: applies one captured row
  /// image delta — insert the after image, delete/update the row matching
  /// the before image — updating the row store, NULL-bearing column values,
  /// and every index, with no SQL involved. Before images are located by
  /// primary key when one exists (then verified column-for-column against
  /// the live row), otherwise by a first-match content scan; a mismatch
  /// means the replica diverged and fails with NotFound.
  Status ApplyRowDelta(const RowOp& op);

  /// Order-independent 64-bit checksum of the row multiset (RowIds
  /// excluded). Two tables with equal contents hash equally regardless of
  /// insertion order — the cross-replica equivalence check used by the
  /// row-based vs statement-based ablation tests.
  uint64_t ContentsHash() const;

  /// Row access (nullptr if the id is dead).
  const Row* Get(RowId id) const;

  /// Looks up by primary key. Requires a declared primary key.
  Result<RowId> FindByPrimaryKey(const Value& key) const;
  bool HasPrimaryKey() const {
    return schema_.primary_key_index().has_value();
  }

  /// Creates a secondary index on `column` (named `index_name`). Fails if the
  /// name exists or the column is unknown. Backfills existing rows.
  Status CreateIndex(const std::string& index_name, const std::string& column);
  bool HasIndexOn(size_t column_index) const;
  bool HasIndexNamed(const std::string& index_name) const;
  /// (index name, column name) of every secondary index, in creation order.
  std::vector<std::pair<std::string, std::string>> SecondaryIndexes() const;

  /// Visits RowIds whose `column` value is within [lo, hi] (either bound
  /// optional). Uses the secondary index on that column — callers check
  /// `HasIndexOn` first; returns FailedPrecondition otherwise.
  /// Visitor: bool(RowId) — return false to stop.
  Status ScanIndex(size_t column_index, const Value* lo, bool lo_inclusive,
                   const Value* hi, bool hi_inclusive,
                   const std::function<bool(RowId)>& visit) const;

  /// Visits RowIds whose primary key is within the given bounds, in key
  /// order. Requires a primary key.
  Status ScanPrimary(const Value* lo, bool lo_inclusive, const Value* hi,
                     bool hi_inclusive,
                     const std::function<bool(RowId)>& visit) const;

  /// Visits every live row in RowId order. Visitor: bool(RowId, const Row&).
  /// Type-erased convenience wrapper over ForEachRow — hot paths should call
  /// ForEachRow directly to avoid per-row std::function dispatch.
  void ScanAll(const std::function<bool(RowId, const Row&)>& visit) const;

  /// Statically-dispatched full scan in RowId order.
  /// Visitor: bool(RowId, const Row&) — return false to stop.
  template <typename Visitor>
  void ForEachRow(Visitor&& visit) const {
    for (const auto& [id, row] : rows_) {
      if (!visit(id, row)) return;
    }
  }

  /// Batched full scan: visits live rows in RowId order, N at a time, as
  /// parallel id/row-pointer arrays (the last chunk may be short). Row
  /// pointers stay valid while the table is not mutated.
  /// Visitor: bool(const RowId* ids, const Row* const* rows, size_t len) —
  /// return false to stop.
  template <size_t N, typename Visitor>
  void ForEachChunk(Visitor&& visit) const {
    RowId ids[N];
    const Row* rows[N];
    size_t len = 0;
    for (const auto& [id, row] : rows_) {
      ids[len] = id;
      rows[len] = &row;
      if (++len == N) {
        if (!visit(ids, rows, len)) return;
        len = 0;
      }
    }
    if (len > 0) visit(ids, rows, len);
  }

  /// Removes all rows (indexes cleared; schema and index definitions kept).
  void Truncate();

  /// Deep equality of contents (schemas equal, same multiset of rows);
  /// used to assert master/slave convergence.
  static bool ContentsEqual(const Table& a, const Table& b);

  /// Internal-consistency check for tests: every row is present in every
  /// index exactly once and vice versa.
  bool ValidateIndexes(std::string* error) const;

  // --- Planner memoization --------------------------------------------------
  // Access-path selection depends only on the predicate shape and this
  // table's index set, so repeated statements (the common case under the
  // statement cache) skip re-deriving it. CreateIndex clears the memo — a
  // new index can change the best path for an already-seen shape.

  /// Cached decision for `shape`, or nullptr if not yet memoized.
  const PlanHint* FindPlanHint(const std::string& shape) const;
  /// Records the decision for `shape` (no-op once kPlanMemoMaxShapes
  /// distinct shapes are held; a workload with unbounded shapes would
  /// otherwise grow the memo without ever hitting it).
  void MemoizePlanHint(const std::string& shape, PlanHint hint);
  size_t plan_memo_size() const { return plan_memo_.size(); }

  static constexpr size_t kPlanMemoMaxShapes = 64;

 private:
  struct SecondaryIndex {
    std::string name;
    size_t column;
    std::unique_ptr<BPlusTree<SecondaryKey, RowId>> tree;
  };

  Status IndexInsert(RowId id, const Row& row);
  void IndexErase(RowId id, const Row& row);
  /// The live row matching `image` (see ApplyRowDelta). Returns the rows_
  /// iterator so the delta path mutates in place instead of re-finding the
  /// row it just located.
  Result<std::map<RowId, Row>::iterator> LocateByImage(const Row& image);
  /// Index-maintaining in-place update of `it`'s row; shared by Update and
  /// the row-delta fast path.
  Status UpdateLocated(std::map<RowId, Row>::iterator it, Row new_row);

  std::string name_;
  Schema schema_;
  RowId next_row_id_ = 1;
  // std::map keeps ScanAll deterministic in RowId order.
  std::map<RowId, Row> rows_;
  std::unique_ptr<BPlusTree<Value, RowId>> primary_;  // null if no PK
  std::vector<SecondaryIndex> secondary_;
  std::unordered_map<std::string, PlanHint> plan_memo_;
};

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_TABLE_H_
