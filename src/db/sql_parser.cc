#include "db/sql_parser.h"

#include <utility>

#include "common/str_util.h"
#include "db/sql_lexer.h"
#include "common/result.h"
#include "common/status.h"
#include "db/schema.h"
#include "db/sql_ast.h"
#include "db/value.h"

namespace clouddb::db {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    const Token& t = Peek();
    Result<Statement> result = [&]() -> Result<Statement> {
      if (t.IsKeyword("CREATE")) return ParseCreate();
      if (t.IsKeyword("DROP")) return ParseDrop();
      if (t.IsKeyword("TRUNCATE")) return ParseTruncate();
      if (t.IsKeyword("INSERT")) return ParseInsert();
      if (t.IsKeyword("SELECT")) return ParseSelect();
      if (t.IsKeyword("UPDATE")) return ParseUpdate();
      if (t.IsKeyword("DELETE")) return ParseDelete();
      if (t.IsKeyword("BEGIN")) {
        Advance();
        return Statement(BeginStatement{});
      }
      if (t.IsKeyword("COMMIT")) {
        Advance();
        return Statement(CommitStatement{});
      }
      if (t.IsKeyword("ROLLBACK")) {
        Advance();
        return Statement(RollbackStatement{});
      }
      return Error("expected a statement");
    }();
    if (!result.ok()) return result;
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return result;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    if (i >= tokens_.size()) i = tokens_.size() - 1;  // kEnd
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(
        StrFormat("parse error at offset %zu: %s (near '%s')", Peek().offset,
                  msg.c_str(), Peek().text.c_str()));
  }

  Status ExpectKeyword(const char* kw) {
    if (!Peek().IsKeyword(kw)) return Error(StrFormat("expected %s", kw));
    Advance();
    return Status::Ok();
  }
  Status ExpectSymbol(const char* sym) {
    if (!Peek().IsSymbol(sym)) return Error(StrFormat("expected '%s'", sym));
    Advance();
    return Status::Ok();
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected identifier");
    }
    return Advance().text;
  }

  Result<Statement> ParseCreate() {
    Advance();  // CREATE
    if (Peek().IsKeyword("TABLE")) return ParseCreateTable();
    if (Peek().IsKeyword("INDEX")) return ParseCreateIndex();
    return Error("expected TABLE or INDEX after CREATE");
  }

  Result<Statement> ParseCreateTable() {
    Advance();  // TABLE
    CreateTableStatement stmt;
    CLOUDDB_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    CLOUDDB_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      ColumnDef col;
      CLOUDDB_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
      CLOUDDB_ASSIGN_OR_RETURN(col.type, ParseType());
      while (true) {
        if (Peek().IsKeyword("PRIMARY")) {
          Advance();
          CLOUDDB_RETURN_IF_ERROR(ExpectKeyword("KEY"));
          col.primary_key = true;
        } else if (Peek().IsKeyword("NOT")) {
          Advance();
          CLOUDDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
          col.not_null = true;
        } else {
          break;
        }
      }
      stmt.columns.push_back(std::move(col));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    CLOUDDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    return Statement(std::move(stmt));
  }

  Result<ValueType> ParseType() {
    const Token& t = Peek();
    if (t.IsKeyword("INT") || t.IsKeyword("BIGINT") ||
        t.IsKeyword("TIMESTAMP")) {
      Advance();
      return ValueType::kInt64;
    }
    if (t.IsKeyword("DOUBLE")) {
      Advance();
      return ValueType::kDouble;
    }
    if (t.IsKeyword("TEXT")) {
      Advance();
      return ValueType::kString;
    }
    if (t.IsKeyword("VARCHAR")) {
      Advance();
      if (Peek().IsSymbol("(")) {  // length is accepted and ignored
        Advance();
        if (Peek().type != TokenType::kInteger) {
          return Error("expected length in VARCHAR(n)");
        }
        Advance();
        CLOUDDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
      return ValueType::kString;
    }
    return Error("expected column type");
  }

  Result<Statement> ParseCreateIndex() {
    Advance();  // INDEX
    CreateIndexStatement stmt;
    CLOUDDB_ASSIGN_OR_RETURN(stmt.index, ExpectIdentifier());
    CLOUDDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
    CLOUDDB_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    CLOUDDB_RETURN_IF_ERROR(ExpectSymbol("("));
    CLOUDDB_ASSIGN_OR_RETURN(stmt.column, ExpectIdentifier());
    CLOUDDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDrop() {
    Advance();  // DROP
    CLOUDDB_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    DropTableStatement stmt;
    CLOUDDB_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseTruncate() {
    Advance();  // TRUNCATE
    if (Peek().IsKeyword("TABLE")) Advance();
    TruncateStatement stmt;
    CLOUDDB_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseInsert() {
    Advance();  // INSERT
    CLOUDDB_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStatement stmt;
    CLOUDDB_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    if (Peek().IsSymbol("(")) {
      Advance();
      while (true) {
        CLOUDDB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        stmt.columns.push_back(std::move(col));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      CLOUDDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    CLOUDDB_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    CLOUDDB_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      CLOUDDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt.values.push_back(std::move(e));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    CLOUDDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    return Statement(std::move(stmt));
  }

  /// True when the next tokens start an aggregate item, e.g. "MIN(".
  bool AtAggregate() const {
    const Token& t = Peek();
    return (t.IsKeyword("COUNT") || t.IsKeyword("MIN") || t.IsKeyword("MAX") ||
            t.IsKeyword("SUM") || t.IsKeyword("AVG")) &&
           Peek(1).IsSymbol("(");
  }

  Result<AggregateItem> ParseAggregate() {
    AggregateItem item;
    const Token& t = Advance();
    CLOUDDB_RETURN_IF_ERROR(ExpectSymbol("("));
    if (t.IsKeyword("COUNT")) {
      item.fn = AggregateFn::kCountStar;
      CLOUDDB_RETURN_IF_ERROR(ExpectSymbol("*"));
    } else {
      if (t.IsKeyword("MIN")) item.fn = AggregateFn::kMin;
      else if (t.IsKeyword("MAX")) item.fn = AggregateFn::kMax;
      else if (t.IsKeyword("SUM")) item.fn = AggregateFn::kSum;
      else item.fn = AggregateFn::kAvg;
      CLOUDDB_ASSIGN_OR_RETURN(item.column, ExpectIdentifier());
    }
    CLOUDDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    return item;
  }

  Result<Statement> ParseSelect() {
    Advance();  // SELECT
    SelectStatement stmt;
    if (Peek().IsSymbol("*")) {
      Advance();
      stmt.star = true;
    } else if (AtAggregate()) {
      while (true) {
        CLOUDDB_ASSIGN_OR_RETURN(AggregateItem item, ParseAggregate());
        stmt.aggregates.push_back(std::move(item));
        if (Peek().IsSymbol(",")) {
          Advance();
          if (!AtAggregate()) {
            return Error("cannot mix aggregates and plain columns");
          }
          continue;
        }
        break;
      }
      stmt.count_star = stmt.aggregates.size() == 1 &&
                        stmt.aggregates[0].fn == AggregateFn::kCountStar;
    } else {
      while (true) {
        CLOUDDB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        stmt.columns.push_back(std::move(col));
        if (Peek().IsSymbol(",")) {
          Advance();
          if (AtAggregate()) {
            return Error("cannot mix aggregates and plain columns");
          }
          continue;
        }
        break;
      }
    }
    CLOUDDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    CLOUDDB_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      CLOUDDB_ASSIGN_OR_RETURN(stmt.where, ParsePredicate());
    }
    if (Peek().IsKeyword("ORDER")) {
      Advance();
      CLOUDDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      CLOUDDB_ASSIGN_OR_RETURN(stmt.order_by, ExpectIdentifier());
      if (Peek().IsKeyword("DESC")) {
        Advance();
        stmt.order_desc = true;
      } else if (Peek().IsKeyword("ASC")) {
        Advance();
      }
    }
    if (Peek().IsKeyword("LIMIT")) {
      Advance();
      if (Peek().type == TokenType::kParameter) {
        // Masked template: the count is bound (and range-checked) at
        // execution time.
        stmt.limit_param = static_cast<size_t>(Advance().int_value);
      } else {
        if (Peek().type != TokenType::kInteger) {
          return Error("expected integer after LIMIT");
        }
        stmt.limit = Advance().int_value;
        if (*stmt.limit < 0) return Error("LIMIT must be non-negative");
      }
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseUpdate() {
    Advance();  // UPDATE
    UpdateStatement stmt;
    CLOUDDB_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    CLOUDDB_RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      CLOUDDB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      CLOUDDB_RETURN_IF_ERROR(ExpectSymbol("="));
      CLOUDDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt.assignments.emplace_back(std::move(col), std::move(e));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      CLOUDDB_ASSIGN_OR_RETURN(stmt.where, ParsePredicate());
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDelete() {
    Advance();  // DELETE
    CLOUDDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStatement stmt;
    CLOUDDB_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      CLOUDDB_ASSIGN_OR_RETURN(stmt.where, ParsePredicate());
    }
    return Statement(std::move(stmt));
  }

  /// predicate := and_chain (OR and_chain)*    — AND binds tighter than OR
  Result<ExprPtr> ParsePredicate() {
    CLOUDDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAndChain());
    while (Peek().IsKeyword("OR")) {
      Advance();
      CLOUDDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAndChain());
      lhs = Expr::MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  /// and_chain := negation (AND negation)*
  Result<ExprPtr> ParseAndChain() {
    CLOUDDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNegation());
    while (Peek().IsKeyword("AND")) {
      Advance();
      CLOUDDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNegation());
      lhs = Expr::MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  /// negation := [NOT] comparison
  Result<ExprPtr> ParseNegation() {
    if (Peek().IsKeyword("NOT")) {
      Advance();
      CLOUDDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseNegation());
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kNot;
      e->lhs = std::move(inner);
      return ExprPtr(std::move(e));
    }
    return ParseComparison();
  }

  /// comparison := expr (cmp-op expr | IS [NOT] NULL | [NOT] IN (list)
  ///               | [NOT] BETWEEN expr AND expr)
  Result<ExprPtr> ParseComparison() {
    CLOUDDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseExpr());
    // Postfix [NOT] IN / BETWEEN.
    bool postfix_negated = false;
    if (Peek().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("BETWEEN"))) {
      Advance();
      postfix_negated = true;
    }
    if (Peek().IsKeyword("IN")) {
      Advance();
      CLOUDDB_RETURN_IF_ERROR(ExpectSymbol("("));
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kInList;
      e->is_null_negated = postfix_negated;
      e->lhs = std::move(lhs);
      while (true) {
        CLOUDDB_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        e->args.push_back(std::move(item));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      CLOUDDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      return ExprPtr(std::move(e));
    }
    if (Peek().IsKeyword("BETWEEN")) {
      Advance();
      // Desugared to (lhs >= lo AND lhs <= hi), which the planner can turn
      // into an index range scan. The bounds are plain expressions, so the
      // inner AND is unambiguous.
      CLOUDDB_ASSIGN_OR_RETURN(ExprPtr lo, ParseExpr());
      CLOUDDB_RETURN_IF_ERROR(ExpectKeyword("AND"));
      CLOUDDB_ASSIGN_OR_RETURN(ExprPtr hi, ParseExpr());
      ExprPtr lhs_copy = CloneExpr(*lhs);
      ExprPtr range = Expr::MakeBinary(
          BinaryOp::kAnd,
          Expr::MakeBinary(BinaryOp::kGe, std::move(lhs), std::move(lo)),
          Expr::MakeBinary(BinaryOp::kLe, std::move(lhs_copy), std::move(hi)));
      if (!postfix_negated) return range;
      auto negated = std::make_unique<Expr>();
      negated->kind = Expr::Kind::kNot;
      negated->lhs = std::move(range);
      return ExprPtr(std::move(negated));
    }
    if (postfix_negated) {
      return Error("expected IN or BETWEEN after NOT");
    }
    const Token& t = Peek();
    if (t.IsKeyword("IS")) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kIsNull;
      if (Peek().IsKeyword("NOT")) {
        Advance();
        e->is_null_negated = true;
      }
      CLOUDDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      e->lhs = std::move(lhs);
      return ExprPtr(std::move(e));
    }
    BinaryOp op;
    if (t.IsSymbol("=")) {
      op = BinaryOp::kEq;
    } else if (t.IsSymbol("!=") || t.IsSymbol("<>")) {
      op = BinaryOp::kNe;
    } else if (t.IsSymbol("<")) {
      op = BinaryOp::kLt;
    } else if (t.IsSymbol("<=")) {
      op = BinaryOp::kLe;
    } else if (t.IsSymbol(">")) {
      op = BinaryOp::kGt;
    } else if (t.IsSymbol(">=")) {
      op = BinaryOp::kGe;
    } else {
      // Bare expression (e.g. the inside of arithmetic parentheses); the
      // caller decides whether what follows is acceptable.
      return lhs;
    }
    Advance();
    CLOUDDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseExpr());
    return Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
  }

  /// expr := term ((+|-) term)*
  Result<ExprPtr> ParseExpr() {
    CLOUDDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseTerm());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      BinaryOp op = Peek().IsSymbol("+") ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      CLOUDDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseTerm());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  /// term := factor ((*|/) factor)*
  Result<ExprPtr> ParseTerm() {
    CLOUDDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseFactor());
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/")) {
      BinaryOp op = Peek().IsSymbol("*") ? BinaryOp::kMul : BinaryOp::kDiv;
      Advance();
      CLOUDDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseFactor());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  /// factor := literal | NULL | [-] number | identifier [ '(' args ')' ]
  ///         | '(' predicate ')'
  Result<ExprPtr> ParseFactor() {
    const Token& t = Peek();
    if (t.IsSymbol("(")) {
      Advance();
      // A parenthesized sub-expression may be a full boolean predicate
      // ("(a = 1 OR b = 2)"); when no boolean operator follows the inner
      // expression this degrades to plain arithmetic grouping.
      CLOUDDB_ASSIGN_OR_RETURN(ExprPtr e, ParsePredicate());
      CLOUDDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
    if (t.IsSymbol("-")) {
      Advance();
      // Unary minus: parse the operand and negate via 0 - x.
      CLOUDDB_ASSIGN_OR_RETURN(ExprPtr e, ParseFactor());
      return Expr::MakeBinary(BinaryOp::kSub,
                              Expr::MakeLiteral(Value(int64_t{0})),
                              std::move(e));
    }
    if (t.type == TokenType::kInteger) {
      Advance();
      return Expr::MakeLiteral(Value(t.int_value));
    }
    if (t.type == TokenType::kDouble) {
      Advance();
      return Expr::MakeLiteral(Value(t.double_value));
    }
    if (t.type == TokenType::kString) {
      Advance();
      return Expr::MakeLiteral(Value(t.text));
    }
    if (t.type == TokenType::kParameter) {
      Advance();
      return Expr::MakeParameter(static_cast<size_t>(t.int_value));
    }
    if (t.IsKeyword("NULL")) {
      Advance();
      return Expr::MakeLiteral(Value::Null());
    }
    if (t.type == TokenType::kIdentifier) {
      std::string name = Advance().text;
      if (Peek().IsSymbol("(")) {
        Advance();
        std::vector<ExprPtr> args;
        if (!Peek().IsSymbol(")")) {
          while (true) {
            CLOUDDB_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            args.push_back(std::move(arg));
            if (Peek().IsSymbol(",")) {
              Advance();
              continue;
            }
            break;
          }
        }
        CLOUDDB_RETURN_IF_ERROR(ExpectSymbol(")"));
        return Expr::MakeFunction(std::move(name), std::move(args));
      }
      return Expr::MakeColumn(std::move(name));
    }
    return Error("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseSql(const std::string& sql) {
  CLOUDDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<Statement> ParseTokens(std::vector<Token> tokens) {
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace clouddb::db
