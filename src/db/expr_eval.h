#ifndef CLOUDDB_DB_EXPR_EVAL_H_
#define CLOUDDB_DB_EXPR_EVAL_H_

#include <vector>

#include "common/result.h"
#include "db/functions.h"
#include "db/schema.h"
#include "db/sql_ast.h"
#include "db/value.h"

namespace clouddb::db {

/// Evaluates `expr`. Column references resolve against `row` laid out per
/// `schema` (both may be null for row-independent expressions, e.g. INSERT
/// values). Booleans are represented as int64 1/0; SQL three-valued logic
/// propagates NULL through comparisons and AND. kParameter nodes resolve
/// against `params` (the bound literals of a cached statement template);
/// evaluating a parameter with no bound params is an internal error.
Result<Value> EvaluateExpr(const Expr& expr, const Schema* schema,
                           const Row* row, const FunctionRegistry& functions,
                           const std::vector<Value>* params = nullptr);

/// Evaluates `expr` as a predicate: true iff the result is non-NULL, numeric
/// and non-zero (NULL => false, per SQL WHERE semantics).
Result<bool> EvaluatePredicate(const Expr& expr, const Schema* schema,
                               const Row* row,
                               const FunctionRegistry& functions,
                               const std::vector<Value>* params = nullptr);

/// True if `expr` references no columns (safe to evaluate once per
/// statement instead of once per row).
bool IsRowIndependent(const Expr& expr);

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_EXPR_EVAL_H_
