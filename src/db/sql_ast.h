#ifndef CLOUDDB_DB_SQL_AST_H_
#define CLOUDDB_DB_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "db/schema.h"
#include "db/value.h"

namespace clouddb::db {

/// Binary operators supported in expressions and WHERE predicates.
enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* BinaryOpToString(BinaryOp op);

/// Expression tree node. A tagged struct rather than a class hierarchy —
/// the expression language is small and closed.
struct Expr {
  enum class Kind {
    kLiteral,       // `literal`
    kColumnRef,     // `column`
    kFunctionCall,  // `function(args...)`, function upper-cased
    kBinary,        // `lhs op rhs`
    kIsNull,        // `lhs IS [NOT] NULL`
    kNot,           // `NOT lhs`
    kInList,        // `lhs [NOT] IN (args...)`; is_null_negated = NOT IN
    kParameter,     // `?` — a masked literal in a cached statement template,
                    // bound per execution from PreparedCall::params
  };

  Kind kind = Kind::kLiteral;
  Value literal;
  std::string column;
  std::string function;
  std::vector<std::unique_ptr<Expr>> args;
  BinaryOp op = BinaryOp::kEq;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;
  bool is_null_negated = false;  // kIsNull/kInList: true for IS NOT NULL / NOT IN
  size_t param_index = 0;        // kParameter: slot in the bound param vector

  static std::unique_ptr<Expr> MakeLiteral(Value v);
  static std::unique_ptr<Expr> MakeColumn(std::string name);
  static std::unique_ptr<Expr> MakeFunction(
      std::string name, std::vector<std::unique_ptr<Expr>> args);
  static std::unique_ptr<Expr> MakeBinary(BinaryOp op,
                                          std::unique_ptr<Expr> lhs,
                                          std::unique_ptr<Expr> rhs);
  static std::unique_ptr<Expr> MakeParameter(size_t index);

  /// Re-renders as SQL (used in error messages and tests).
  std::string ToString() const;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Deep copy of an expression tree.
ExprPtr CloneExpr(const Expr& expr);

// --- Statements -----------------------------------------------------------

struct CreateTableStatement {
  std::string table;
  std::vector<ColumnDef> columns;
};

struct CreateIndexStatement {
  std::string index;
  std::string table;
  std::string column;
};

struct DropTableStatement {
  std::string table;
};

struct TruncateStatement {
  std::string table;
};

struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;  // empty = schema order
  std::vector<ExprPtr> values;
};

/// Aggregate functions usable in a SELECT list.
enum class AggregateFn {
  kCountStar,  // COUNT(*)
  kMin,
  kMax,
  kSum,
  kAvg,
};

const char* AggregateFnToString(AggregateFn fn);

/// One item of an aggregate SELECT list, e.g. MIN(age).
struct AggregateItem {
  AggregateFn fn = AggregateFn::kCountStar;
  std::string column;  // empty for COUNT(*)
};

struct SelectStatement {
  std::string table;
  bool star = false;        // SELECT *
  bool count_star = false;  // SELECT COUNT(*) and nothing else
  std::vector<std::string> columns;
  /// Non-empty = aggregate query (mixing aggregates and plain columns is
  /// rejected by the parser; there is no GROUP BY).
  std::vector<AggregateItem> aggregates;
  ExprPtr where;            // may be null
  std::string order_by;     // empty = unordered
  bool order_desc = false;
  std::optional<int64_t> limit;
  /// Set instead of `limit` in a cached statement template: the LIMIT count
  /// is a masked literal, resolved from the bound params at execution.
  std::optional<size_t> limit_param;
};

struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // may be null
};

struct DeleteStatement {
  std::string table;
  ExprPtr where;  // may be null
};

struct BeginStatement {};
struct CommitStatement {};
struct RollbackStatement {};

/// A parsed SQL statement. Move-only (expressions own their children).
using Statement =
    std::variant<CreateTableStatement, CreateIndexStatement,
                 DropTableStatement, TruncateStatement, InsertStatement,
                 SelectStatement, UpdateStatement, DeleteStatement,
                 BeginStatement, CommitStatement, RollbackStatement>;

/// True for statements that modify data or schema (and therefore must be
/// written to the binlog and routed to the master).
bool IsWriteStatement(const Statement& stmt);

/// True for transaction-control statements (BEGIN/COMMIT/ROLLBACK).
bool IsTransactionControl(const Statement& stmt);

/// Short statement-kind name for diagnostics ("INSERT", "SELECT", ...).
const char* StatementKindName(const Statement& stmt);

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_SQL_AST_H_
