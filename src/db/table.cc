#include "db/table.h"

#include <algorithm>

#include "common/str_util.h"
#include "common/result.h"
#include "common/status.h"
#include "db/bplus_tree.h"
#include "db/schema.h"
#include "db/value.h"
#include "db/writeset.h"

namespace clouddb::db {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  if (schema_.primary_key_index().has_value()) {
    primary_ = std::make_unique<BPlusTree<Value, RowId>>();
  }
}

Result<RowId> Table::Insert(Row row) {
  CLOUDDB_RETURN_IF_ERROR(schema_.CoerceRow(&row));
  // The primary tree's Insert already detects duplicates, so there is no
  // separate Contains() probe — one traversal instead of two. The row id is
  // only consumed once the insert is known to stick.
  RowId id = next_row_id_;
  Status st = IndexInsert(id, row);
  if (!st.ok()) {
    if (primary_ != nullptr) {
      return Status::AlreadyExists(
          StrFormat("duplicate primary key %s in table '%s'",
                    row[*schema_.primary_key_index()].ToSqlLiteral().c_str(),
                    name_.c_str()));
    }
    return st;
  }
  ++next_row_id_;
  rows_.emplace(id, std::move(row));
  return id;
}

Status Table::Delete(RowId id) {
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return Status::NotFound(StrFormat("row %lld not found in table '%s'",
                                      static_cast<long long>(id),
                                      name_.c_str()));
  }
  IndexErase(id, it->second);
  rows_.erase(it);
  return Status::Ok();
}

Status Table::Update(RowId id, Row new_row) {
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return Status::NotFound(StrFormat("row %lld not found in table '%s'",
                                      static_cast<long long>(id),
                                      name_.c_str()));
  }
  return UpdateLocated(it, std::move(new_row));
}

Status Table::UpdateLocated(std::map<RowId, Row>::iterator it, Row new_row) {
  RowId id = it->first;
  CLOUDDB_RETURN_IF_ERROR(schema_.CoerceRow(&new_row));
  const Row& old_row = it->second;
  // Maintain only the indexes whose key column actually changed. The common
  // replicated UPDATE touches non-indexed columns, where a blanket
  // erase+reinsert would pay two B+Tree rebalances per index for nothing.
  bool pk_changed = false;
  if (primary_ != nullptr) {
    size_t pk_col = *schema_.primary_key_index();
    const Value& old_pk = old_row[pk_col];
    const Value& new_pk = new_row[pk_col];
    pk_changed = old_pk != new_pk;
    if (pk_changed && primary_->Contains(new_pk)) {
      return Status::AlreadyExists(
          StrFormat("duplicate primary key %s in table '%s'",
                    new_pk.ToSqlLiteral().c_str(), name_.c_str()));
    }
  }
  if (pk_changed) {
    size_t pk_col = *schema_.primary_key_index();
    primary_->Erase(old_row[pk_col]);
    primary_->Insert(new_row[pk_col], id);
  }
  for (auto& idx : secondary_) {
    if (old_row[idx.column] == new_row[idx.column]) continue;
    idx.tree->Erase(SecondaryKey{old_row[idx.column], id});
    idx.tree->Insert(SecondaryKey{new_row[idx.column], id}, id);
  }
  it->second = std::move(new_row);
  return Status::Ok();
}

Status Table::RestoreRow(RowId id, Row row) {
  if (rows_.count(id) > 0) {
    return Status::AlreadyExists(
        StrFormat("row %lld is live in table '%s'", static_cast<long long>(id),
                  name_.c_str()));
  }
  CLOUDDB_RETURN_IF_ERROR(schema_.CoerceRow(&row));
  if (primary_ != nullptr) {
    const Value& pk = row[*schema_.primary_key_index()];
    if (primary_->Contains(pk)) {
      return Status::AlreadyExists("duplicate primary key on restore");
    }
  }
  CLOUDDB_RETURN_IF_ERROR(IndexInsert(id, row));
  rows_.emplace(id, std::move(row));
  if (id >= next_row_id_) next_row_id_ = id + 1;
  return Status::Ok();
}

Status Table::ApplyRowDelta(const RowOp& op) {
  switch (op.kind) {
    case RowOp::Kind::kInsert: {
      Result<RowId> id = Insert(Row(op.after));
      return id.ok() ? Status::Ok() : id.status();
    }
    case RowOp::Kind::kDelete: {
      CLOUDDB_ASSIGN_OR_RETURN(auto it, LocateByImage(op.before));
      IndexErase(it->first, it->second);
      rows_.erase(it);
      return Status::Ok();
    }
    case RowOp::Kind::kUpdate: {
      CLOUDDB_ASSIGN_OR_RETURN(auto it, LocateByImage(op.before));
      return UpdateLocated(it, Row(op.after));
    }
  }
  return Status::Internal("unknown row op kind");
}

Result<std::map<RowId, Row>::iterator> Table::LocateByImage(const Row& image) {
  if (image.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("row image has %zu columns, table '%s' has %zu",
                  image.size(), name_.c_str(), schema_.num_columns()));
  }
  auto matches = [&](const Row& row) {
    for (size_t i = 0; i < image.size(); ++i) {
      if (row[i] != image[i]) return false;
    }
    return true;
  };
  if (primary_ != nullptr) {
    CLOUDDB_ASSIGN_OR_RETURN(
        RowId id, FindByPrimaryKey(image[*schema_.primary_key_index()]));
    auto it = rows_.find(id);
    if (it == rows_.end() || !matches(it->second)) {
      return Status::NotFound(StrFormat(
          "before image mismatch for %s in table '%s' (replica diverged)",
          image[*schema_.primary_key_index()].ToSqlLiteral().c_str(),
          name_.c_str()));
    }
    return it;
  }
  // No primary key: first content-equal row in RowId order. Any matching
  // row is interchangeable for multiset equality, and scanning in RowId
  // order keeps the choice deterministic.
  for (auto it = rows_.begin(); it != rows_.end(); ++it) {
    if (matches(it->second)) return it;
  }
  return Status::NotFound(StrFormat(
      "no row matching before image in table '%s' (replica diverged)",
      name_.c_str()));
}

uint64_t Table::ContentsHash() const {
  // FNV-1a over each row's values, summed (mod 2^64) across rows so the
  // result is independent of RowId assignment and iteration order.
  uint64_t total = 0;
  for (const auto& [id, row] : rows_) {
    uint64_t h = 1469598103934665603ull;
    for (const Value& v : row) {
      h ^= v.Hash();
      h *= 1099511628211ull;
    }
    total += h;
  }
  return total ^ (static_cast<uint64_t>(rows_.size()) * 0x9e3779b97f4a7c15ull);
}

const Row* Table::Get(RowId id) const {
  auto it = rows_.find(id);
  return it == rows_.end() ? nullptr : &it->second;
}

Result<RowId> Table::FindByPrimaryKey(const Value& key) const {
  if (primary_ == nullptr) {
    return Status::FailedPrecondition(
        StrFormat("table '%s' has no primary key", name_.c_str()));
  }
  const RowId* id = primary_->Find(key);
  if (id == nullptr) {
    return Status::NotFound(StrFormat("primary key %s not found",
                                      key.ToSqlLiteral().c_str()));
  }
  return *id;
}

Status Table::CreateIndex(const std::string& index_name,
                          const std::string& column) {
  if (HasIndexNamed(index_name)) {
    return Status::AlreadyExists(
        StrFormat("index '%s' already exists", index_name.c_str()));
  }
  CLOUDDB_ASSIGN_OR_RETURN(size_t col, schema_.ColumnIndex(column));
  SecondaryIndex idx;
  idx.name = index_name;
  idx.column = col;
  idx.tree = std::make_unique<BPlusTree<SecondaryKey, RowId>>();
  // Backfill via sort + bulk load: building the tree bottom-up at full
  // fan-out beats n individual inserts (no splits, no per-key descent).
  // SecondaryKey's RowId tiebreaker makes the sorted keys strictly
  // increasing, which BulkLoad requires.
  std::vector<std::pair<SecondaryKey, RowId>> entries;
  entries.reserve(rows_.size());
  for (const auto& [id, row] : rows_) {
    entries.emplace_back(SecondaryKey{row[col], id}, id);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  idx.tree->BulkLoad(std::move(entries));
  secondary_.push_back(std::move(idx));
  // The new index can beat the memoized path for already-seen shapes.
  plan_memo_.clear();
  return Status::Ok();
}

const PlanHint* Table::FindPlanHint(const std::string& shape) const {
  auto it = plan_memo_.find(shape);
  return it == plan_memo_.end() ? nullptr : &it->second;
}

void Table::MemoizePlanHint(const std::string& shape, PlanHint hint) {
  if (plan_memo_.size() >= kPlanMemoMaxShapes) return;
  plan_memo_.emplace(shape, std::move(hint));
}

bool Table::HasIndexOn(size_t column_index) const {
  if (primary_ != nullptr && schema_.primary_key_index() == column_index) {
    return true;
  }
  return std::any_of(secondary_.begin(), secondary_.end(),
                     [&](const SecondaryIndex& i) {
                       return i.column == column_index;
                     });
}

bool Table::HasIndexNamed(const std::string& index_name) const {
  return std::any_of(secondary_.begin(), secondary_.end(),
                     [&](const SecondaryIndex& i) {
                       return EqualsIgnoreCase(i.name, index_name);
                     });
}

std::vector<std::pair<std::string, std::string>> Table::SecondaryIndexes()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(secondary_.size());
  for (const SecondaryIndex& idx : secondary_) {
    out.emplace_back(idx.name, schema_.columns()[idx.column].name);
  }
  return out;
}

Status Table::ScanIndex(size_t column_index, const Value* lo,
                        bool lo_inclusive, const Value* hi, bool hi_inclusive,
                        const std::function<bool(RowId)>& visit) const {
  // Prefer the primary index when the column is the PK.
  if (primary_ != nullptr && schema_.primary_key_index() == column_index) {
    return ScanPrimary(lo, lo_inclusive, hi, hi_inclusive, visit);
  }
  const SecondaryIndex* idx = nullptr;
  for (const auto& i : secondary_) {
    if (i.column == column_index) {
      idx = &i;
      break;
    }
  }
  if (idx == nullptr) {
    return Status::FailedPrecondition(
        StrFormat("no index on column %zu of table '%s'", column_index,
                  name_.c_str()));
  }
  // Bounds on Value map to bounds on SecondaryKey via RowId extremes.
  SecondaryKey lo_key, hi_key;
  const SecondaryKey* lo_ptr = nullptr;
  const SecondaryKey* hi_ptr = nullptr;
  if (lo != nullptr) {
    lo_key = SecondaryKey{*lo, lo_inclusive ? INT64_MIN : INT64_MAX};
    lo_ptr = &lo_key;
  }
  if (hi != nullptr) {
    hi_key = SecondaryKey{*hi, hi_inclusive ? INT64_MAX : INT64_MIN};
    hi_ptr = &hi_key;
  }
  idx->tree->Scan(lo_ptr, /*lo_inclusive=*/true, hi_ptr, hi_inclusive,
                  [&](const SecondaryKey&, const RowId& id) {
                    return visit(id);
                  });
  return Status::Ok();
}

Status Table::ScanPrimary(const Value* lo, bool lo_inclusive, const Value* hi,
                          bool hi_inclusive,
                          const std::function<bool(RowId)>& visit) const {
  if (primary_ == nullptr) {
    return Status::FailedPrecondition(
        StrFormat("table '%s' has no primary key", name_.c_str()));
  }
  primary_->Scan(lo, lo_inclusive, hi, hi_inclusive,
                 [&](const Value&, const RowId& id) { return visit(id); });
  return Status::Ok();
}

void Table::ScanAll(
    const std::function<bool(RowId, const Row&)>& visit) const {
  ForEachRow(visit);
}

void Table::Truncate() {
  rows_.clear();
  if (primary_ != nullptr) primary_->Clear();
  for (auto& idx : secondary_) idx.tree->Clear();
}

bool Table::ContentsEqual(const Table& a, const Table& b) {
  if (a.schema_.num_columns() != b.schema_.num_columns()) return false;
  if (a.rows_.size() != b.rows_.size()) return false;
  // Compare as sorted multisets of rows (RowIds may differ between replicas
  // only if statements interleave differently; contents are what matter).
  std::vector<const Row*> ra, rb;
  ra.reserve(a.rows_.size());
  rb.reserve(b.rows_.size());
  for (const auto& [id, row] : a.rows_) ra.push_back(&row);
  for (const auto& [id, row] : b.rows_) rb.push_back(&row);
  auto row_less = [](const Row* x, const Row* y) {
    for (size_t i = 0; i < std::min(x->size(), y->size()); ++i) {
      int c = Value::Compare((*x)[i], (*y)[i]);
      if (c != 0) return c < 0;
    }
    return x->size() < y->size();
  };
  std::sort(ra.begin(), ra.end(), row_less);
  std::sort(rb.begin(), rb.end(), row_less);
  for (size_t i = 0; i < ra.size(); ++i) {
    if (ra[i]->size() != rb[i]->size()) return false;
    for (size_t j = 0; j < ra[i]->size(); ++j) {
      if ((*ra[i])[j] != (*rb[i])[j]) return false;
    }
  }
  return true;
}

bool Table::ValidateIndexes(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  if (primary_ != nullptr) {
    std::string tree_err;
    if (!primary_->Validate(&tree_err)) {
      return fail("primary tree invalid: " + tree_err);
    }
    if (primary_->size() != rows_.size()) {
      return fail("primary index size mismatch");
    }
    size_t pk_col = *schema_.primary_key_index();
    for (const auto& [id, row] : rows_) {
      const RowId* found = primary_->Find(row[pk_col]);
      if (found == nullptr || *found != id) {
        return fail("row missing from primary index");
      }
    }
  }
  for (const auto& idx : secondary_) {
    std::string tree_err;
    if (!idx.tree->Validate(&tree_err)) {
      return fail("secondary tree invalid: " + tree_err);
    }
    if (idx.tree->size() != rows_.size()) {
      return fail(StrFormat("secondary index '%s' size mismatch",
                            idx.name.c_str()));
    }
    for (const auto& [id, row] : rows_) {
      const RowId* found = idx.tree->Find(SecondaryKey{row[idx.column], id});
      if (found == nullptr || *found != id) {
        return fail(StrFormat("row missing from secondary index '%s'",
                              idx.name.c_str()));
      }
    }
  }
  return true;
}

Status Table::IndexInsert(RowId id, const Row& row) {
  if (primary_ != nullptr) {
    const Value& pk = row[*schema_.primary_key_index()];
    if (!primary_->Insert(pk, id)) {
      return Status::AlreadyExists("duplicate primary key");
    }
  }
  for (auto& idx : secondary_) {
    idx.tree->Insert(SecondaryKey{row[idx.column], id}, id);
  }
  return Status::Ok();
}

void Table::IndexErase(RowId id, const Row& row) {
  if (primary_ != nullptr) {
    primary_->Erase(row[*schema_.primary_key_index()]);
  }
  for (auto& idx : secondary_) {
    idx.tree->Erase(SecondaryKey{row[idx.column], id});
  }
}

}  // namespace clouddb::db
