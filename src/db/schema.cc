#include "db/schema.h"

#include "common/str_util.h"
#include "common/result.h"
#include "common/status.h"
#include "db/value.h"

namespace clouddb::db {

Result<Schema> Schema::Create(std::vector<ColumnDef> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("table must have at least one column");
  }
  Schema schema;
  for (size_t i = 0; i < columns.size(); ++i) {
    ColumnDef& col = columns[i];
    if (col.name.empty()) {
      return Status::InvalidArgument("column name must not be empty");
    }
    if (col.type == ValueType::kNull) {
      return Status::InvalidArgument(
          StrFormat("column '%s' cannot have type NULL", col.name.c_str()));
    }
    for (size_t j = 0; j < i; ++j) {
      if (EqualsIgnoreCase(columns[j].name, col.name)) {
        return Status::InvalidArgument(
            StrFormat("duplicate column name '%s'", col.name.c_str()));
      }
    }
    if (col.primary_key) {
      if (schema.pk_index_.has_value()) {
        return Status::InvalidArgument("multiple PRIMARY KEY columns");
      }
      col.not_null = true;  // PK implies NOT NULL
      schema.pk_index_ = i;
    }
  }
  schema.columns_ = std::move(columns);
  return schema;
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return Status::NotFound(StrFormat("no column named '%s'", name.c_str()));
}

bool Schema::HasColumn(const std::string& name) const {
  return ColumnIndex(name).ok();
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, table has %zu columns", row.size(),
                  columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = columns_[i];
    const Value& v = row[i];
    if (v.is_null()) {
      if (col.not_null) {
        return Status::InvalidArgument(
            StrFormat("NULL in NOT NULL column '%s'", col.name.c_str()));
      }
      continue;
    }
    bool ok = v.type() == col.type ||
              (col.type == ValueType::kDouble && v.type() == ValueType::kInt64);
    if (!ok) {
      return Status::InvalidArgument(
          StrFormat("type mismatch in column '%s': expected %s, got %s",
                    col.name.c_str(), ValueTypeToString(col.type),
                    ValueTypeToString(v.type())));
    }
  }
  return Status::Ok();
}

Status Schema::CoerceRow(Row* row) const {
  CLOUDDB_RETURN_IF_ERROR(ValidateRow(*row));
  for (size_t i = 0; i < row->size(); ++i) {
    if (columns_[i].type == ValueType::kDouble &&
        (*row)[i].type() == ValueType::kInt64) {
      (*row)[i] = Value(static_cast<double>((*row)[i].AsInt64()));
    }
  }
  return Status::Ok();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeToString(columns_[i].type);
    if (columns_[i].primary_key) out += " PRIMARY KEY";
    else if (columns_[i].not_null) out += " NOT NULL";
  }
  out += ")";
  return out;
}

}  // namespace clouddb::db
