#include "db/vec_chunk.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "db/value.h"
#include "db/vec_arena.h"

namespace clouddb::db {

ColumnVector MaterializeColumn(const Row* const* rows, size_t len,
                               size_t column, ValueType type, VecArena* arena) {
  ColumnVector out;
  out.type = type;
  size_t words = (len + 63) / 64;
  uint64_t* nulls = arena->AllocateArray<uint64_t>(words);
  for (size_t w = 0; w < words; ++w) nulls[w] = 0;
  out.nulls = nulls;
  switch (type) {
    case ValueType::kInt64: {
      int64_t* data = arena->AllocateArray<int64_t>(len);
      for (size_t i = 0; i < len; ++i) {
        const Value& v = (*rows[i])[column];
        if (v.is_null()) {
          nulls[i >> 6] |= uint64_t{1} << (i & 63);
          data[i] = 0;
        } else {
          assert(v.type() == ValueType::kInt64);
          data[i] = v.AsInt64();
        }
      }
      out.i64 = data;
      break;
    }
    case ValueType::kDouble: {
      double* data = arena->AllocateArray<double>(len);
      for (size_t i = 0; i < len; ++i) {
        const Value& v = (*rows[i])[column];
        if (v.is_null()) {
          nulls[i >> 6] |= uint64_t{1} << (i & 63);
          data[i] = 0.0;
        } else {
          assert(v.type() == ValueType::kDouble);
          data[i] = v.AsDouble();
        }
      }
      out.f64 = data;
      break;
    }
    case ValueType::kString: {
      std::string_view* data = arena->AllocateArray<std::string_view>(len);
      for (size_t i = 0; i < len; ++i) {
        const Value& v = (*rows[i])[column];
        if (v.is_null()) {
          nulls[i >> 6] |= uint64_t{1} << (i & 63);
          data[i] = std::string_view();
        } else {
          assert(v.type() == ValueType::kString);
          data[i] = std::string_view(v.AsString());
        }
      }
      out.str = data;
      break;
    }
    case ValueType::kNull:
      // Not a declarable column type; treat every lane as NULL.
      for (size_t i = 0; i < len; ++i) {
        nulls[i >> 6] |= uint64_t{1} << (i & 63);
      }
      break;
  }
  return out;
}

}  // namespace clouddb::db
