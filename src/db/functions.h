#ifndef CLOUDDB_DB_FUNCTIONS_H_
#define CLOUDDB_DB_FUNCTIONS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "db/value.h"

namespace clouddb::db {

/// Scalar SQL functions available to the executor.
///
/// Note on replication: statement-based replication re-executes statement
/// *text* on every replica, so functions are re-evaluated per replica.
/// NOW_MICROS() deliberately exploits this — it reads the local instance
/// clock, which is how the paper's heartbeat mechanism obtains a per-replica
/// commit timestamp (master inserts its local time; each slave overwrites the
/// expression result with its own local time on re-execution).
class FunctionRegistry {
 public:
  using Fn = std::function<Result<Value>(const std::vector<Value>&)>;

  /// Creates a registry with the built-ins: ABS, MOD, LENGTH, CONCAT,
  /// and NOW_MICROS bound to `now_micros` (defaults to a constant 0 source,
  /// which standalone/unit-test databases use).
  explicit FunctionRegistry(std::function<int64_t()> now_micros = nullptr);

  /// Registers (or replaces) a function under `name` (case-insensitive).
  void Register(const std::string& name, Fn fn);

  /// Invokes `name` with `args`. NotFound if unregistered.
  Result<Value> Call(const std::string& name,
                     const std::vector<Value>& args) const;

  bool Has(const std::string& name) const;

  /// Rebinds the NOW_MICROS time source (the replication node layer binds it
  /// to the instance's drifting local clock).
  void SetTimeSource(std::function<int64_t()> now_micros);

 private:
  std::map<std::string, Fn> fns_;  // keys upper-cased
};

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_FUNCTIONS_H_
