#ifndef CLOUDDB_DB_BINLOG_H_
#define CLOUDDB_DB_BINLOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "db/writeset.h"

namespace clouddb::db {

/// One committed transaction in the binary log. The event always carries the
/// SQL *text* of every write statement in commit order — slaves re-parse and
/// re-execute it, which is what makes non-deterministic functions
/// (NOW_MICROS) evaluate per replica.
///
/// In row-based mode the event additionally carries one StatementWriteset
/// per statement (`writesets` parallel to `statements`): the row images the
/// master's execution produced. Slaves apply covered writesets directly
/// through Table::ApplyRowDelta and fall back to the statement text for
/// uncovered entries (DDL, function-bearing statements).
struct BinlogEvent {
  int64_t index = 0;  // position in the log, 0-based and dense
  std::vector<std::string> statements;
  /// Empty in statement-based mode; otherwise parallel to `statements`.
  std::vector<StatementWriteset> writesets;
  int64_t commit_micros = 0;  // committing server's local clock at commit

  bool has_writesets() const { return !writesets.empty(); }
};

/// Serialized wire size of an event in bytes (header + payload). For a
/// statement-only event this is exactly the 32-byte header plus the
/// statement text — the size the simulated network has always charged —
/// so disabling row-based mode reproduces historical traffic byte for byte.
/// Writeset-bearing events additionally pay for their encoded row images.
int64_t EventWireSize(const BinlogEvent& event);

/// Binary codec for binlog events (the on-the-wire format of the group
/// shipping path). Round-trips every Value type including NULL, empty
/// strings, negative integers, and doubles bit-exactly.
std::string SerializeBinlogEvent(const BinlogEvent& event);
Result<BinlogEvent> DeserializeBinlogEvent(std::string_view data);

/// Append-only, in-memory binary log.
class Binlog {
 public:
  Binlog() = default;
  Binlog(const Binlog&) = delete;
  Binlog& operator=(const Binlog&) = delete;

  /// Appends a statement-based event; returns its index.
  int64_t Append(std::vector<std::string> statements, int64_t commit_micros);

  /// Appends a row-based event (`writesets` parallel to `statements`).
  int64_t Append(std::vector<std::string> statements,
                 std::vector<StatementWriteset> writesets,
                 int64_t commit_micros);

  int64_t size() const { return static_cast<int64_t>(events_.size()); }
  /// Event at `index` in [0, size()).
  const BinlogEvent& At(int64_t index) const {
    return events_[static_cast<size_t>(index)];
  }

  /// Called after every append — replication masters use this to push new
  /// events to connected dump threads.
  void SetAppendListener(std::function<void(const BinlogEvent&)> listener) {
    listener_ = std::move(listener);
  }

 private:
  std::vector<BinlogEvent> events_;
  std::function<void(const BinlogEvent&)> listener_;
};

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_BINLOG_H_
