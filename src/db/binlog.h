#ifndef CLOUDDB_DB_BINLOG_H_
#define CLOUDDB_DB_BINLOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace clouddb::db {

/// One committed transaction in the statement-based binary log. The event
/// carries the SQL *text* of every write statement in commit order — slaves
/// re-parse and re-execute it, which is what makes non-deterministic
/// functions (NOW_MICROS) evaluate per replica.
struct BinlogEvent {
  int64_t index = 0;  // position in the log, 0-based and dense
  std::vector<std::string> statements;
  int64_t commit_micros = 0;  // committing server's local clock at commit
};

/// Append-only, in-memory statement-based binary log.
class Binlog {
 public:
  Binlog() = default;
  Binlog(const Binlog&) = delete;
  Binlog& operator=(const Binlog&) = delete;

  /// Appends an event; returns its index.
  int64_t Append(std::vector<std::string> statements, int64_t commit_micros);

  int64_t size() const { return static_cast<int64_t>(events_.size()); }
  /// Event at `index` in [0, size()).
  const BinlogEvent& At(int64_t index) const {
    return events_[static_cast<size_t>(index)];
  }

  /// Called after every append — replication masters use this to push new
  /// events to connected dump threads.
  void SetAppendListener(std::function<void(const BinlogEvent&)> listener) {
    listener_ = std::move(listener);
  }

 private:
  std::vector<BinlogEvent> events_;
  std::function<void(const BinlogEvent&)> listener_;
};

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_BINLOG_H_
