#ifndef CLOUDDB_DB_VEC_EXPR_H_
#define CLOUDDB_DB_VEC_EXPR_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "db/schema.h"
#include "db/sql_ast.h"
#include "db/value.h"
#include "db/vec_arena.h"

namespace clouddb::db {

/// Comparison opcode (the comparison subset of BinaryOp).
enum class VecCmp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// One postfix instruction of a compiled predicate. Truth lanes use the
/// Kleene encoding 0 = false, 1 = unknown (SQL NULL), 2 = true, chosen so
/// three-valued AND is lane-wise min and OR is lane-wise max.
struct VecOp {
  enum class Code : uint8_t {
    kCmpColConst,  // push cmp(columns[col], consts[arg]) truth lanes
    kIsNullCol,    // push IS [NOT] NULL of columns[col] (never unknown)
    kAnd,          // pop b, pop a, push min(a, b)
    kOr,           // pop b, pop a, push max(a, b)
    kNot,          // top = 2 - top
  };

  Code code = Code::kAnd;
  VecCmp cmp = VecCmp::kEq;
  bool negated = false;  // kIsNullCol: IS NOT NULL
  uint16_t col = 0;      // column-slot operand
  uint16_t arg = 0;      // const-slot operand
};

/// A WHERE predicate compiled once into flat postfix bytecode, evaluated
/// over whole chunks with type-specialized kernels.
///
/// The program is a schema-independent template: column operands are names
/// (resolved against the live catalog at every execution by BindProgram) and
/// constants are references to literals in the source Expr tree or to
/// parameter slots. Both the column name views and the literal pointers
/// point INTO the Expr tree the program was compiled from, so a program must
/// be stored next to — and dropped with — its owning statement.
///
/// The compiler's coverage (CompilePredicate) is restricted to shapes whose
/// evaluation can never raise an execution error: comparisons between a
/// column and a literal/parameter, IS [NOT] NULL on a column, and AND/OR/NOT
/// over those. Anything else disengages the whole program and the executor
/// falls back to the tree-walking scalar path, keeping results bit-identical
/// including error propagation.
struct VecProgram {
  struct ConstRef {
    const Value* literal = nullptr;  // non-null: a literal in the Expr tree
    uint32_t param = 0;              // literal == nullptr: parameter slot
    /// The operand was written `-x` (parsed as `0 - x`): the referenced
    /// value is numerically negated at bind time, exactly as the scalar
    /// arithmetic would. Binding fails for non-numeric values, falling back
    /// to the scalar path (which then reports the identical error).
    bool negate = false;
  };

  std::vector<std::string_view> columns;
  std::vector<ConstRef> consts;
  /// The WHERE split at its top-level ANDs, one postfix program per
  /// conjunct. A row matches iff every conjunct evaluates to true; the
  /// evaluator runs conjuncts over a shrinking selection vector and stops
  /// as soon as it empties.
  std::vector<std::vector<VecOp>> conjuncts;
  size_t max_stack = 0;

  bool empty() const { return conjuncts.empty(); }
};

/// Compiles `where` into `out`. Returns false (and leaves `out`
/// unspecified) when any sub-expression falls outside the covered subset —
/// function calls, arithmetic, IN lists, column-to-column comparisons. The
/// one arithmetic shape covered is unary minus on a constant (`col = -7`,
/// parsed as `0 - 7`), folded into a negated ConstRef.
bool CompilePredicate(const Expr& where, VecProgram* out);

/// A program resolved against a concrete schema and parameter vector for
/// one execution. Rebinding per execution (it is O(#operands)) is what makes
/// a cached program safe across DDL: if the catalog changed underneath a
/// still-live prepared statement, binding fails and the caller falls back to
/// the scalar path instead of reading stale column slots.
struct VecBinding {
  const VecProgram* program = nullptr;
  std::vector<uint32_t> col_index;   // per column slot: schema column index
  std::vector<ValueType> col_type;   // per column slot: declared type
  std::vector<const Value*> consts;  // per const slot: bound value
  /// Storage for bind-time folded values (negated constants). `consts`
  /// entries may point into this; it is reserved up front so the pointers
  /// stay stable while binding appends.
  std::vector<Value> owned;
};

/// Resolves column names (case-insensitive, matching Schema::ColumnIndex)
/// and parameter slots. Returns false on any unknown column or missing
/// parameter; `out`'s vectors are reused across calls to avoid reallocation.
bool BindProgram(const VecProgram& program, const Schema& schema,
                 const std::vector<Value>* params, VecBinding* out);

/// Evaluates the bound predicate over rows[0..len) and writes the lane
/// indexes of matching rows into sel (caller provides space for len).
/// Returns the number of matches. Scratch buffers come from `arena`; the
/// caller resets it between chunks.
size_t VecFilterChunk(const VecBinding& binding, const Row* const* rows,
                      size_t len, uint32_t* sel, VecArena* arena);

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_VEC_EXPR_H_
