#include "db/vec_agg.h"

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "db/value.h"
#include "db/vec_chunk.h"

namespace clouddb::db {

void VecAccumulateSum(const ColumnVector& col, const uint32_t* sel, size_t n,
                      VecAggState* state) {
  // The executor rejects SUM/AVG over declared-string columns before any
  // accumulation, so only numeric column types reach this kernel.
  switch (col.type) {
    case ValueType::kInt64: {
      int64_t sum = 0;
      int64_t count = 0;
      for (size_t j = 0; j < n; ++j) {
        uint32_t lane = sel[j];
        if (ColumnLaneIsNull(col, lane)) continue;
        sum += col.i64[lane];
        ++count;
      }
      state->int_sum += sum;
      state->count += count;
      break;
    }
    case ValueType::kDouble: {
      // Left-to-right accumulation, same order as the scalar loop, so the
      // floating-point result is bit-identical.
      for (size_t j = 0; j < n; ++j) {
        uint32_t lane = sel[j];
        if (ColumnLaneIsNull(col, lane)) continue;
        state->dbl_sum += col.f64[lane];
        ++state->count;
      }
      break;
    }
    default:
      break;
  }
}

void VecAccumulateMinMax(const ColumnVector& col, const Row* const* rows,
                         const uint32_t* sel, size_t n, size_t column,
                         bool is_max, VecAggState* state) {
  bool has = state->best_row != nullptr;
  switch (col.type) {
    case ValueType::kInt64: {
      int64_t best = has ? (*state->best_row)[column].AsInt64() : 0;
      for (size_t j = 0; j < n; ++j) {
        uint32_t lane = sel[j];
        if (ColumnLaneIsNull(col, lane)) continue;
        ++state->count;
        int64_t v = col.i64[lane];
        if (!has || (is_max ? v > best : v < best)) {
          best = v;
          // NOLINTNEXTLINE(clouddb-bounds): sel entries are row indexes < chunk row count by the selection-vector invariant
          state->best_row = rows[lane];
          has = true;
        }
      }
      break;
    }
    case ValueType::kDouble: {
      double best = has ? (*state->best_row)[column].AsDouble() : 0.0;
      for (size_t j = 0; j < n; ++j) {
        uint32_t lane = sel[j];
        if (ColumnLaneIsNull(col, lane)) continue;
        ++state->count;
        double v = col.f64[lane];
        // Strict `<`/`>` matches Value::Compare's three-way on doubles
        // (NaN compares equal there, i.e. never a strict improvement).
        if (!has || (is_max ? v > best : v < best)) {
          best = v;
          // NOLINTNEXTLINE(clouddb-bounds): sel entries are row indexes < chunk row count by the selection-vector invariant
          state->best_row = rows[lane];
          has = true;
        }
      }
      break;
    }
    case ValueType::kString: {
      std::string_view best =
          has ? std::string_view((*state->best_row)[column].AsString())
              : std::string_view();
      for (size_t j = 0; j < n; ++j) {
        uint32_t lane = sel[j];
        if (ColumnLaneIsNull(col, lane)) continue;
        ++state->count;
        std::string_view v = col.str[lane];
        int c = v.compare(best);
        if (!has || (is_max ? c > 0 : c < 0)) {
          best = v;
          // NOLINTNEXTLINE(clouddb-bounds): sel entries are row indexes < chunk row count by the selection-vector invariant
          state->best_row = rows[lane];
          has = true;
        }
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace clouddb::db
