#include "db/binlog.h"

#include <utility>

namespace clouddb::db {

int64_t Binlog::Append(std::vector<std::string> statements,
                       int64_t commit_micros) {
  BinlogEvent ev;
  ev.index = static_cast<int64_t>(events_.size());
  ev.statements = std::move(statements);
  ev.commit_micros = commit_micros;
  events_.push_back(std::move(ev));
  if (listener_) listener_(events_.back());
  return events_.back().index;
}

}  // namespace clouddb::db
