#include "db/binlog.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <utility>

#include "common/status.h"
#include "common/str_util.h"
#include "db/value.h"
#include "common/result.h"
#include "db/writeset.h"

namespace clouddb::db {

namespace {

// --- Little-endian primitive codec -----------------------------------------

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendI64(std::string* out, int64_t v) {
  AppendU64(out, static_cast<uint64_t>(v));
}

void AppendDouble(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

/// Collection counts and string lengths ship as explicit 32-bit wire
/// fields. Everything counted here lives in memory on the master first, so
/// 2^32 is unreachable in practice; the assert pins the invariant where the
/// truncating cast happens.
void AppendCount(std::string* out, size_t n) {
  assert(n <= std::numeric_limits<uint32_t>::max());
  AppendU32(out, static_cast<uint32_t>(n));
}

void AppendLengthPrefixed(std::string* out, const std::string& s) {
  AppendCount(out, s.size());
  out->append(s);
}

/// Bounds-checked reader over the serialized buffer.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Status ReadU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return Truncated();
    *v = static_cast<uint8_t>(data_[pos_++]);
    return Status::Ok();
  }

  Status ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return Truncated();
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return Status::Ok();
  }

  Status ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return Truncated();
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return Status::Ok();
  }

  Status ReadI64(int64_t* v) {
    uint64_t bits;
    CLOUDDB_RETURN_IF_ERROR(ReadU64(&bits));
    *v = static_cast<int64_t>(bits);
    return Status::Ok();
  }

  Status ReadDouble(double* v) {
    uint64_t bits;
    CLOUDDB_RETURN_IF_ERROR(ReadU64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::Ok();
  }

  /// Mirror of AppendCount: counts and lengths are explicit 32-bit fields.
  Status ReadCount(uint32_t* v) { return ReadU32(v); }

  Status ReadLengthPrefixed(std::string* s) {
    uint32_t len;
    CLOUDDB_RETURN_IF_ERROR(ReadCount(&len));
    if (pos_ + len > data_.size()) return Truncated();
    s->assign(data_.substr(pos_, len));
    pos_ += len;
    return Status::Ok();
  }

  bool AtEnd() const { return pos_ == data_.size(); }

  /// Bytes left in the buffer. Decode loops cap their `reserve()` at what
  /// the remaining wire could possibly encode (every element costs at least
  /// one byte), so a hostile count field near 2^32 cannot force a
  /// multi-gigabyte allocation before the truncation check catches it.
  size_t Remaining() const { return data_.size() - pos_; }

 private:
  static Status Truncated() {
    return Status::InvalidArgument("truncated binlog event");
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// --- Value / row codec ------------------------------------------------------

// Value tags. The tag byte doubles as the type check on decode.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt64 = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

void AppendValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      AppendU8(out, kTagNull);
      break;
    case ValueType::kInt64:
      AppendU8(out, kTagInt64);
      AppendI64(out, v.AsInt64());
      break;
    case ValueType::kDouble:
      AppendU8(out, kTagDouble);
      AppendDouble(out, v.AsDouble());
      break;
    case ValueType::kString:
      AppendU8(out, kTagString);
      AppendLengthPrefixed(out, v.AsString());
      break;
  }
}

Status ReadValue(Reader* r, Value* out) {
  uint8_t tag;
  CLOUDDB_RETURN_IF_ERROR(r->ReadU8(&tag));
  switch (tag) {
    case kTagNull:
      *out = Value::Null();
      return Status::Ok();
    case kTagInt64: {
      int64_t v;
      CLOUDDB_RETURN_IF_ERROR(r->ReadI64(&v));
      *out = Value(v);
      return Status::Ok();
    }
    case kTagDouble: {
      double v;
      CLOUDDB_RETURN_IF_ERROR(r->ReadDouble(&v));
      *out = Value(v);
      return Status::Ok();
    }
    case kTagString: {
      std::string s;
      CLOUDDB_RETURN_IF_ERROR(r->ReadLengthPrefixed(&s));
      *out = Value(std::move(s));
      return Status::Ok();
    }
    default:
      return Status::InvalidArgument(
          StrFormat("unknown value tag %d in binlog event", tag));
  }
}

void AppendRow(std::string* out, const Row& row) {
  AppendCount(out, row.size());
  for (const Value& v : row) AppendValue(out, v);
}

Status ReadRow(Reader* r, Row* out) {
  uint32_t n;
  CLOUDDB_RETURN_IF_ERROR(r->ReadCount(&n));
  out->clear();
  out->reserve(std::min<size_t>(n, r->Remaining()));
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    CLOUDDB_RETURN_IF_ERROR(ReadValue(r, &v));
    out->push_back(std::move(v));
  }
  return Status::Ok();
}

int64_t ValueWireSize(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 9;
    case ValueType::kString:
      return 5 + static_cast<int64_t>(v.AsString().size());
  }
  return 1;
}

int64_t RowWireSize(const Row& row) {
  int64_t size = 4;
  for (const Value& v : row) size += ValueWireSize(v);
  return size;
}

}  // namespace

int64_t EventWireSize(const BinlogEvent& event) {
  int64_t size = 32;  // header
  for (const auto& s : event.statements) {
    size += static_cast<int64_t>(s.size());
  }
  for (const StatementWriteset& ws : event.writesets) {
    size += 5;  // covered flag + op count
    for (const RowOp& op : ws.ops) {
      size += 5 + static_cast<int64_t>(op.table.size());  // kind + table
      size += RowWireSize(op.before) + RowWireSize(op.after);
    }
  }
  return size;
}

std::string SerializeBinlogEvent(const BinlogEvent& event) {
  std::string out;
  out.reserve(static_cast<size_t>(EventWireSize(event)));
  AppendI64(&out, event.index);
  AppendI64(&out, event.commit_micros);
  AppendCount(&out, event.statements.size());
  AppendU8(&out, event.has_writesets() ? 1 : 0);
  for (const std::string& sql : event.statements) {
    AppendLengthPrefixed(&out, sql);
  }
  if (event.has_writesets()) {
    for (const StatementWriteset& ws : event.writesets) {
      AppendU8(&out, ws.covered ? 1 : 0);
      AppendCount(&out, ws.ops.size());
      for (const RowOp& op : ws.ops) {
        AppendU8(&out, static_cast<uint8_t>(op.kind));
        AppendLengthPrefixed(&out, op.table);
        AppendRow(&out, op.before);
        AppendRow(&out, op.after);
      }
    }
  }
  return out;
}

Result<BinlogEvent> DeserializeBinlogEvent(std::string_view data) {
  Reader r(data);
  BinlogEvent event;
  CLOUDDB_RETURN_IF_ERROR(r.ReadI64(&event.index));
  CLOUDDB_RETURN_IF_ERROR(r.ReadI64(&event.commit_micros));
  uint32_t num_statements = 0;
  CLOUDDB_RETURN_IF_ERROR(r.ReadCount(&num_statements));
  uint8_t has_writesets = 0;
  CLOUDDB_RETURN_IF_ERROR(r.ReadU8(&has_writesets));
  event.statements.reserve(std::min<size_t>(num_statements, r.Remaining()));
  for (uint32_t i = 0; i < num_statements; ++i) {
    std::string sql;
    CLOUDDB_RETURN_IF_ERROR(r.ReadLengthPrefixed(&sql));
    event.statements.push_back(std::move(sql));
  }
  if (has_writesets != 0) {
    event.writesets.reserve(std::min<size_t>(num_statements, r.Remaining()));
    for (uint32_t i = 0; i < num_statements; ++i) {
      StatementWriteset ws;
      uint8_t covered = 0;
      CLOUDDB_RETURN_IF_ERROR(r.ReadU8(&covered));
      ws.covered = covered != 0;
      uint32_t num_ops = 0;
      CLOUDDB_RETURN_IF_ERROR(r.ReadCount(&num_ops));
      ws.ops.reserve(std::min<size_t>(num_ops, r.Remaining()));
      for (uint32_t j = 0; j < num_ops; ++j) {
        RowOp op;
        uint8_t kind = 0;
        CLOUDDB_RETURN_IF_ERROR(r.ReadU8(&kind));
        if (kind > static_cast<uint8_t>(RowOp::Kind::kUpdate)) {
          return Status::InvalidArgument(
              StrFormat("unknown row op kind %d in binlog event", kind));
        }
        op.kind = static_cast<RowOp::Kind>(kind);
        CLOUDDB_RETURN_IF_ERROR(r.ReadLengthPrefixed(&op.table));
        CLOUDDB_RETURN_IF_ERROR(ReadRow(&r, &op.before));
        CLOUDDB_RETURN_IF_ERROR(ReadRow(&r, &op.after));
        ws.ops.push_back(std::move(op));
      }
      event.writesets.push_back(std::move(ws));
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after binlog event");
  }
  return event;
}

int64_t Binlog::Append(std::vector<std::string> statements,
                       int64_t commit_micros) {
  return Append(std::move(statements), {}, commit_micros);
}

int64_t Binlog::Append(std::vector<std::string> statements,
                       std::vector<StatementWriteset> writesets,
                       int64_t commit_micros) {
  BinlogEvent ev;
  ev.index = static_cast<int64_t>(events_.size());
  ev.statements = std::move(statements);
  ev.writesets = std::move(writesets);
  ev.commit_micros = commit_micros;
  events_.push_back(std::move(ev));
  if (listener_) listener_(events_.back());
  return events_.back().index;
}

}  // namespace clouddb::db
