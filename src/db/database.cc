#include "db/database.h"

#include <algorithm>
#include <cassert>

#include "common/str_util.h"
#include "db/expr_eval.h"
#include "db/sql_parser.h"
#include "common/result.h"
#include "common/status.h"
#include "db/schema.h"
#include "db/sql_ast.h"
#include "db/statement_cache.h"
#include "db/table.h"
#include "db/transaction.h"
#include "db/value.h"
#include "db/vec_agg.h"
#include "db/vec_chunk.h"
#include "db/vec_expr.h"
#include "db/writeset.h"

namespace clouddb::db {

namespace {

/// Lower-cased catalog key for a table name.
std::string TableKey(const std::string& name) { return ToLower(name); }

bool IsDdl(const Statement& stmt) {
  return std::holds_alternative<CreateTableStatement>(stmt) ||
         std::holds_alternative<CreateIndexStatement>(stmt) ||
         std::holds_alternative<DropTableStatement>(stmt) ||
         std::holds_alternative<TruncateStatement>(stmt);
}

/// Target table of a statement (empty for transaction control).
std::string TargetTable(const Statement& stmt) {
  struct Visitor {
    std::string operator()(const CreateTableStatement& s) { return s.table; }
    std::string operator()(const CreateIndexStatement& s) { return s.table; }
    std::string operator()(const DropTableStatement& s) { return s.table; }
    std::string operator()(const TruncateStatement& s) { return s.table; }
    std::string operator()(const InsertStatement& s) { return s.table; }
    std::string operator()(const SelectStatement& s) { return s.table; }
    std::string operator()(const UpdateStatement& s) { return s.table; }
    std::string operator()(const DeleteStatement& s) { return s.table; }
    std::string operator()(const BeginStatement&) { return ""; }
    std::string operator()(const CommitStatement&) { return ""; }
    std::string operator()(const RollbackStatement&) { return ""; }
  };
  return std::visit(Visitor{}, stmt);
}

/// A single-column comparison extracted from the WHERE conjunction, with the
/// non-column side already evaluated.
struct Constraint {
  size_t column;
  BinaryOp op;  // kEq, kLt, kLe, kGt, kGe (kNe is never index-usable)
  Value value;
};

bool ExprHasFunctionCall(const Expr& expr) {
  if (expr.kind == Expr::Kind::kFunctionCall) return true;
  for (const auto& arg : expr.args) {
    if (arg != nullptr && ExprHasFunctionCall(*arg)) return true;
  }
  if (expr.lhs != nullptr && ExprHasFunctionCall(*expr.lhs)) return true;
  if (expr.rhs != nullptr && ExprHasFunctionCall(*expr.rhs)) return true;
  return false;
}

/// Coverage rule for row-based capture: a statement carrying any function
/// call is never covered. Functions may be non-deterministic (NOW_MICROS),
/// and statement-based semantics — which the row-based toggle must reproduce
/// bit-identically — re-evaluate them per replica; the heartbeat delay
/// measurement depends on exactly that.
bool StatementHasFunctionCall(const Statement& stmt) {
  if (const auto* insert = std::get_if<InsertStatement>(&stmt)) {
    for (const auto& expr : insert->values) {
      if (expr != nullptr && ExprHasFunctionCall(*expr)) return true;
    }
    return false;
  }
  if (const auto* update = std::get_if<UpdateStatement>(&stmt)) {
    for (const auto& [col, expr] : update->assignments) {
      if (expr != nullptr && ExprHasFunctionCall(*expr)) return true;
    }
    return update->where != nullptr && ExprHasFunctionCall(*update->where);
  }
  if (const auto* del = std::get_if<DeleteStatement>(&stmt)) {
    return del->where != nullptr && ExprHasFunctionCall(*del->where);
  }
  return false;
}

}  // namespace

/// Statement executor bound to one (database, session) pair. Performs access
/// path selection, predicate filtering, mutation with undo capture.
class Executor {
 public:
  /// `compiled_where` (nullable) is the statement-cache-compiled predicate
  /// bytecode for this statement's WHERE clause. `jit_predicates` allows
  /// compiling the predicate on the fly when there is no cache entry (the
  /// parse-every-time path); cached templates never JIT — compilation
  /// happened, or failed, once at insert time.
  /// `capture` (nullable) receives the row images of every mutation this
  /// statement performs — the row-based replication writeset. Null (the
  /// default) skips capture entirely, so statement-based mode pays nothing.
  Executor(Database* database, Session* session,
           const std::vector<Value>* params = nullptr,
           const VecProgram* compiled_where = nullptr,
           bool jit_predicates = false,
           std::vector<RowOp>* capture = nullptr)
      : db_(database),
        session_(session),
        params_(params),
        compiled_where_(compiled_where),
        jit_predicates_(jit_predicates),
        capture_(capture) {}

  Result<ExecResult> Run(const Statement& stmt) {
    struct Visitor {
      Executor* e;
      Result<ExecResult> operator()(const CreateTableStatement& s) {
        return e->CreateTable(s);
      }
      Result<ExecResult> operator()(const CreateIndexStatement& s) {
        return e->CreateIndex(s);
      }
      Result<ExecResult> operator()(const DropTableStatement& s) {
        return e->DropTable(s);
      }
      Result<ExecResult> operator()(const TruncateStatement& s) {
        return e->Truncate(s);
      }
      Result<ExecResult> operator()(const InsertStatement& s) {
        return e->Insert(s);
      }
      Result<ExecResult> operator()(const SelectStatement& s) {
        return e->Select(s);
      }
      Result<ExecResult> operator()(const UpdateStatement& s) {
        return e->Update(s);
      }
      Result<ExecResult> operator()(const DeleteStatement& s) {
        return e->Delete(s);
      }
      Result<ExecResult> operator()(const BeginStatement&) {
        return Status::Internal("txn control reached executor");
      }
      Result<ExecResult> operator()(const CommitStatement&) {
        return Status::Internal("txn control reached executor");
      }
      Result<ExecResult> operator()(const RollbackStatement&) {
        return Status::Internal("txn control reached executor");
      }
    };
    return std::visit(Visitor{this}, stmt);
  }

 private:
  Result<Table*> ResolveTable(const std::string& name) {
    Table* t = db_->GetTable(name);
    if (t == nullptr) {
      return Status::NotFound(StrFormat("no table named '%s'", name.c_str()));
    }
    return t;
  }

  Result<ExecResult> CreateTable(const CreateTableStatement& stmt) {
    if (db_->GetTable(stmt.table) != nullptr) {
      return Status::AlreadyExists(
          StrFormat("table '%s' already exists", stmt.table.c_str()));
    }
    CLOUDDB_ASSIGN_OR_RETURN(Schema schema, Schema::Create(stmt.columns));
    db_->tables_.emplace(TableKey(stmt.table), std::make_unique<Table>(
                                                   stmt.table, std::move(schema)));
    return ExecResult{};
  }

  Result<ExecResult> CreateIndex(const CreateIndexStatement& stmt) {
    CLOUDDB_ASSIGN_OR_RETURN(Table * table, ResolveTable(stmt.table));
    CLOUDDB_RETURN_IF_ERROR(table->CreateIndex(stmt.index, stmt.column));
    return ExecResult{};
  }

  Result<ExecResult> DropTable(const DropTableStatement& stmt) {
    auto it = db_->tables_.find(TableKey(stmt.table));
    if (it == db_->tables_.end()) {
      return Status::NotFound(
          StrFormat("no table named '%s'", stmt.table.c_str()));
    }
    db_->tables_.erase(it);
    return ExecResult{};
  }

  Result<ExecResult> Truncate(const TruncateStatement& stmt) {
    CLOUDDB_ASSIGN_OR_RETURN(Table * table, ResolveTable(stmt.table));
    ExecResult result;
    result.rows_affected = static_cast<int64_t>(table->num_rows());
    table->Truncate();
    return result;
  }

  Result<ExecResult> Insert(const InsertStatement& stmt) {
    CLOUDDB_ASSIGN_OR_RETURN(Table * table, ResolveTable(stmt.table));
    const Schema& schema = table->schema();
    // Evaluate the value expressions (no row context: column refs fail).
    std::vector<Value> values;
    values.reserve(stmt.values.size());
    for (const auto& expr : stmt.values) {
      CLOUDDB_ASSIGN_OR_RETURN(
          Value v,
          EvaluateExpr(*expr, nullptr, nullptr, db_->functions_, params_));
      values.push_back(std::move(v));
    }
    Row row;
    if (stmt.columns.empty()) {
      if (values.size() != schema.num_columns()) {
        return Status::InvalidArgument(
            StrFormat("INSERT supplies %zu values for %zu columns",
                      values.size(), schema.num_columns()));
      }
      row = std::move(values);
    } else {
      if (values.size() != stmt.columns.size()) {
        return Status::InvalidArgument("INSERT column/value count mismatch");
      }
      row.assign(schema.num_columns(), Value::Null());
      for (size_t i = 0; i < stmt.columns.size(); ++i) {
        CLOUDDB_ASSIGN_OR_RETURN(size_t col,
                                 schema.ColumnIndex(stmt.columns[i]));
        row[col] = std::move(values[i]);
      }
    }
    CLOUDDB_ASSIGN_OR_RETURN(RowId id, table->Insert(std::move(row)));
    session_->undo().push_back(
        UndoRecord{UndoRecord::Kind::kInsert, TableKey(stmt.table), id, {}});
    if (capture_ != nullptr) {
      // The after image is the row as *stored* (post type-coercion), fetched
      // back so a slave's direct apply reproduces it bit for bit.
      capture_->push_back(RowOp{RowOp::Kind::kInsert, TableKey(stmt.table),
                                {}, *table->Get(id)});
    }
    ExecResult result;
    result.rows_affected = 1;
    return result;
  }

  Result<ExecResult> Select(const SelectStatement& stmt) {
    CLOUDDB_ASSIGN_OR_RETURN(Table * table, ResolveTable(stmt.table));
    const Schema& schema = table->schema();
    ExecResult result;
    // Resolve LIMIT: a cached template carries it as a parameter slot.
    std::optional<int64_t> stmt_limit = stmt.limit;
    if (stmt.limit_param.has_value()) {
      if (params_ == nullptr || *stmt.limit_param >= params_->size()) {
        return Status::Internal("unbound LIMIT parameter");
      }
      CLOUDDB_ASSIGN_OR_RETURN(int64_t n,
                               (*params_)[*stmt.limit_param].ToInt64());
      if (n < 0) return Status::InvalidArgument("LIMIT must be non-negative");
      stmt_limit = n;
    }
    // Limit pushdown hints: when the scan can prove the predicate and the
    // requested order, it may stop early.
    int64_t limit_hint = -1;
    size_t order_col = SIZE_MAX;
    if (stmt_limit.has_value() && stmt.aggregates.empty()) {
      limit_hint = *stmt_limit;
    }
    if (!stmt.order_by.empty()) {
      CLOUDDB_ASSIGN_OR_RETURN(order_col, schema.ColumnIndex(stmt.order_by));
    }
    std::vector<const Row*> match_rows;
    CLOUDDB_ASSIGN_OR_RETURN(
        std::vector<RowId> matches,
        CollectMatches(table, stmt.where.get(), &result, limit_hint,
                       order_col, stmt.order_desc, &match_rows));
    if (!stmt.aggregates.empty()) {
      if (db_->options_.vectorized_exec) {
        return AggregateVectorized(stmt, *table, matches, match_rows,
                                   std::move(result));
      }
      return Aggregate(stmt, *table, matches, std::move(result));
    }
    // Resolve projection.
    std::vector<size_t> proj;
    if (stmt.star) {
      for (size_t i = 0; i < schema.num_columns(); ++i) {
        proj.push_back(i);
        result.column_names.push_back(schema.columns()[i].name);
      }
    } else {
      for (const std::string& col : stmt.columns) {
        CLOUDDB_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(col));
        proj.push_back(idx);
        result.column_names.push_back(schema.columns()[idx].name);
      }
    }
    // Fetch each matched row once; sorting and projection work on cached
    // pointers (Table::Get per comparison was the hot spot under load). The
    // vectorized filter already produced the pointers; reuse them.
    std::vector<const Row*> rows;
    if (match_rows.size() == matches.size()) {
      rows = std::move(match_rows);
    } else {
      rows.reserve(matches.size());
      for (RowId id : matches) rows.push_back(table->Get(id));
    }
    // ORDER BY before projection (the sort column need not be projected).
    if (!stmt.order_by.empty()) {
      CLOUDDB_ASSIGN_OR_RETURN(size_t sort_col,
                               schema.ColumnIndex(stmt.order_by));
      if (EqualsIgnoreCase(result.scan_ordered_by, stmt.order_by)) {
        // The index scan already produced this order.
        if (stmt.order_desc) std::reverse(rows.begin(), rows.end());
      } else {
        bool desc = stmt.order_desc;
        std::stable_sort(rows.begin(), rows.end(),
                         [&](const Row* a, const Row* b) {
                           int c = Value::Compare((*a)[sort_col],
                                                  (*b)[sort_col]);
                           return desc ? c > 0 : c < 0;
                         });
      }
    }
    size_t limit = stmt_limit.has_value() ? static_cast<size_t>(*stmt_limit)
                                          : rows.size();
    for (size_t i = 0; i < rows.size() && i < limit; ++i) {
      Row out;
      out.reserve(proj.size());
      for (size_t col : proj) out.push_back((*rows[i])[col]);
      result.rows.push_back(std::move(out));
    }
    return result;
  }

  /// Computes the aggregate SELECT list over the matched rows.
  /// SQL semantics: NULL inputs are skipped; MIN/MAX/SUM/AVG over an empty
  /// (or all-NULL) set yield NULL; COUNT(*) yields 0.
  Result<ExecResult> Aggregate(const SelectStatement& stmt, const Table& table,
                               const std::vector<RowId>& matches,
                               ExecResult result) {
    const Schema& schema = table.schema();
    Row out_row;
    for (const AggregateItem& item : stmt.aggregates) {
      if (item.fn == AggregateFn::kCountStar) {
        result.column_names.push_back("COUNT(*)");
        out_row.push_back(Value(static_cast<int64_t>(matches.size())));
        continue;
      }
      CLOUDDB_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(item.column));
      result.column_names.push_back(StrFormat(
          "%s(%s)", AggregateFnToString(item.fn), item.column.c_str()));
      bool numeric_needed =
          item.fn == AggregateFn::kSum || item.fn == AggregateFn::kAvg;
      if (numeric_needed && schema.columns()[col].type == ValueType::kString) {
        return Status::InvalidArgument(
            StrFormat("%s over non-numeric column '%s'",
                      AggregateFnToString(item.fn), item.column.c_str()));
      }
      int64_t count = 0;
      int64_t int_sum = 0;
      double dbl_sum = 0.0;
      Value best;  // MIN/MAX accumulator
      for (RowId id : matches) {
        const Value& v = (*table.Get(id))[col];
        if (v.is_null()) continue;
        ++count;
        switch (item.fn) {
          case AggregateFn::kMin:
            if (best.is_null() || v < best) best = v;
            break;
          case AggregateFn::kMax:
            if (best.is_null() || v > best) best = v;
            break;
          case AggregateFn::kSum:
          case AggregateFn::kAvg:
            if (v.type() == ValueType::kInt64) {
              int_sum += v.AsInt64();
            } else {
              CLOUDDB_ASSIGN_OR_RETURN(double d, v.ToDouble());
              dbl_sum += d;
            }
            break;
          default:
            break;
        }
      }
      if (count == 0) {
        out_row.push_back(Value::Null());
        continue;
      }
      switch (item.fn) {
        case AggregateFn::kMin:
        case AggregateFn::kMax:
          out_row.push_back(best);
          break;
        case AggregateFn::kSum:
          // SUM(int column) stays integral; any double contribution widens.
          if (schema.columns()[col].type == ValueType::kInt64) {
            out_row.push_back(Value(int_sum));
          } else {
            out_row.push_back(Value(dbl_sum + static_cast<double>(int_sum)));
          }
          break;
        case AggregateFn::kAvg:
          out_row.push_back(
              Value((dbl_sum + static_cast<double>(int_sum)) /
                    static_cast<double>(count)));
          break;
        default:
          break;
      }
    }
    result.rows.push_back(std::move(out_row));
    return result;
  }

  /// Vectorized Aggregate: same structure, error paths, names, and final
  /// arithmetic as the scalar version, but the per-row accumulation loop is
  /// replaced by chunked column kernels (vec_agg.h). The accumulator types
  /// and accumulation order are identical, so results are bit-identical —
  /// including the float summation order for AVG/SUM over double columns.
  Result<ExecResult> AggregateVectorized(
      const SelectStatement& stmt, const Table& table,
      const std::vector<RowId>& matches,
      const std::vector<const Row*>& match_rows, ExecResult result) {
    const Schema& schema = table.schema();
    // Row pointers: reuse the filter's, else fetch each matched row once for
    // all aggregate items (the scalar loop re-fetches per item).
    std::vector<const Row*> fetched;
    const Row* const* rows;
    if (match_rows.size() == matches.size()) {
      rows = match_rows.data();
    } else {
      fetched.reserve(matches.size());
      for (RowId id : matches) fetched.push_back(table.Get(id));
      rows = fetched.data();
    }
    ++db_->vec_stats_.fused_aggregates;
    Row out_row;
    for (const AggregateItem& item : stmt.aggregates) {
      if (item.fn == AggregateFn::kCountStar) {
        result.column_names.push_back("COUNT(*)");
        out_row.push_back(Value(static_cast<int64_t>(matches.size())));
        continue;
      }
      CLOUDDB_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(item.column));
      result.column_names.push_back(StrFormat(
          "%s(%s)", AggregateFnToString(item.fn), item.column.c_str()));
      bool numeric_needed =
          item.fn == AggregateFn::kSum || item.fn == AggregateFn::kAvg;
      if (numeric_needed && schema.columns()[col].type == ValueType::kString) {
        return Status::InvalidArgument(
            StrFormat("%s over non-numeric column '%s'",
                      AggregateFnToString(item.fn), item.column.c_str()));
      }
      ValueType col_type = schema.columns()[col].type;
      VecAggState state;
      for (size_t base = 0; base < matches.size(); base += kVecChunkSize) {
        size_t len = std::min(kVecChunkSize, matches.size() - base);
        db_->vec_arena_.Reset();
        ColumnVector cv = MaterializeColumn(rows + base, len, col, col_type,
                                            &db_->vec_arena_);
        uint32_t* sel = db_->vec_arena_.AllocateArray<uint32_t>(len);
        for (size_t j = 0; j < len; ++j) sel[j] = static_cast<uint32_t>(j);
        switch (item.fn) {
          case AggregateFn::kMin:
          case AggregateFn::kMax:
            VecAccumulateMinMax(cv, rows + base, sel, len, col,
                                item.fn == AggregateFn::kMax, &state);
            break;
          case AggregateFn::kSum:
          case AggregateFn::kAvg:
            VecAccumulateSum(cv, sel, len, &state);
            break;
          default:
            break;
        }
      }
      if (state.count == 0) {
        out_row.push_back(Value::Null());
        continue;
      }
      switch (item.fn) {
        case AggregateFn::kMin:
        case AggregateFn::kMax:
          out_row.push_back((*state.best_row)[col]);
          break;
        case AggregateFn::kSum:
          if (schema.columns()[col].type == ValueType::kInt64) {
            out_row.push_back(Value(state.int_sum));
          } else {
            out_row.push_back(Value(state.dbl_sum +
                                    static_cast<double>(state.int_sum)));
          }
          break;
        case AggregateFn::kAvg:
          out_row.push_back(
              Value((state.dbl_sum + static_cast<double>(state.int_sum)) /
                    static_cast<double>(state.count)));
          break;
        default:
          break;
      }
    }
    result.rows.push_back(std::move(out_row));
    return result;
  }

  Result<ExecResult> Update(const UpdateStatement& stmt) {
    CLOUDDB_ASSIGN_OR_RETURN(Table * table, ResolveTable(stmt.table));
    const Schema& schema = table->schema();
    // Pre-resolve assignment targets.
    std::vector<size_t> target_cols;
    for (const auto& [col, expr] : stmt.assignments) {
      CLOUDDB_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(col));
      target_cols.push_back(idx);
    }
    ExecResult result;
    CLOUDDB_ASSIGN_OR_RETURN(std::vector<RowId> matches,
                             CollectMatches(table, stmt.where.get(), &result));
    for (RowId id : matches) {
      const Row* old_row = table->Get(id);
      Row new_row = *old_row;
      for (size_t i = 0; i < stmt.assignments.size(); ++i) {
        // Assignments see the *old* row (SQL semantics).
        CLOUDDB_ASSIGN_OR_RETURN(
            Value v, EvaluateExpr(*stmt.assignments[i].second, &schema,
                                  old_row, db_->functions_, params_));
        new_row[target_cols[i]] = std::move(v);
      }
      Row saved = *old_row;
      CLOUDDB_RETURN_IF_ERROR(table->Update(id, std::move(new_row)));
      if (capture_ != nullptr) {
        capture_->push_back(RowOp{RowOp::Kind::kUpdate, TableKey(stmt.table),
                                  saved, *table->Get(id)});
      }
      session_->undo().push_back(UndoRecord{UndoRecord::Kind::kUpdate,
                                            TableKey(stmt.table), id,
                                            std::move(saved)});
      ++result.rows_affected;
    }
    return result;
  }

  Result<ExecResult> Delete(const DeleteStatement& stmt) {
    CLOUDDB_ASSIGN_OR_RETURN(Table * table, ResolveTable(stmt.table));
    ExecResult result;
    CLOUDDB_ASSIGN_OR_RETURN(std::vector<RowId> matches,
                             CollectMatches(table, stmt.where.get(), &result));
    for (RowId id : matches) {
      Row saved = *table->Get(id);
      CLOUDDB_RETURN_IF_ERROR(table->Delete(id));
      if (capture_ != nullptr) {
        capture_->push_back(RowOp{RowOp::Kind::kDelete, TableKey(stmt.table),
                                  saved, {}});
      }
      session_->undo().push_back(UndoRecord{UndoRecord::Kind::kDelete,
                                            TableKey(stmt.table), id,
                                            std::move(saved)});
      ++result.rows_affected;
    }
    return result;
  }

  /// Extracts index-usable single-column constraints from the WHERE
  /// conjunction (col op <row-independent expr>, either side).
  Status ExtractConstraints(const Expr& expr, const Schema& schema,
                            std::vector<Constraint>* out) {
    if (expr.kind == Expr::Kind::kBinary && expr.op == BinaryOp::kAnd) {
      CLOUDDB_RETURN_IF_ERROR(ExtractConstraints(*expr.lhs, schema, out));
      CLOUDDB_RETURN_IF_ERROR(ExtractConstraints(*expr.rhs, schema, out));
      return Status::Ok();
    }
    if (expr.kind != Expr::Kind::kBinary) return Status::Ok();
    BinaryOp op = expr.op;
    if (op != BinaryOp::kEq && op != BinaryOp::kLt && op != BinaryOp::kLe &&
        op != BinaryOp::kGt && op != BinaryOp::kGe) {
      return Status::Ok();
    }
    const Expr* col_side = nullptr;
    const Expr* val_side = nullptr;
    if (expr.lhs->kind == Expr::Kind::kColumnRef &&
        IsRowIndependent(*expr.rhs)) {
      col_side = expr.lhs.get();
      val_side = expr.rhs.get();
    } else if (expr.rhs->kind == Expr::Kind::kColumnRef &&
               IsRowIndependent(*expr.lhs)) {
      col_side = expr.rhs.get();
      val_side = expr.lhs.get();
      // Flip the operator: `5 < col` means `col > 5`.
      switch (op) {
        case BinaryOp::kLt:
          op = BinaryOp::kGt;
          break;
        case BinaryOp::kLe:
          op = BinaryOp::kGe;
          break;
        case BinaryOp::kGt:
          op = BinaryOp::kLt;
          break;
        case BinaryOp::kGe:
          op = BinaryOp::kLe;
          break;
        default:
          break;
      }
    } else {
      return Status::Ok();
    }
    auto col_idx = schema.ColumnIndex(col_side->column);
    if (!col_idx.ok()) return Status::Ok();  // checked later by the filter
    CLOUDDB_ASSIGN_OR_RETURN(
        Value v,
        EvaluateExpr(*val_side, nullptr, nullptr, db_->functions_, params_));
    if (v.is_null()) return Status::Ok();  // NULL comparisons never match
    out->push_back(Constraint{*col_idx, op, std::move(v)});
    return Status::Ok();
  }

  /// True iff every leaf of the WHERE conjunction is a comparison on
  /// `column` that the chosen scan's bounds fully encode — i.e. the index
  /// scan alone proves the predicate. For an equality path the leaf must
  /// compare equal to the chosen value; for a range path any </<=/>/>= on
  /// the column qualifies (all of them were folded into the bounds).
  bool PredicateSubsumedByScan(const Expr& expr, const Schema& schema,
                               size_t column, const Constraint* chosen_eq) {
    if (expr.kind == Expr::Kind::kBinary && expr.op == BinaryOp::kAnd) {
      return PredicateSubsumedByScan(*expr.lhs, schema, column, chosen_eq) &&
             PredicateSubsumedByScan(*expr.rhs, schema, column, chosen_eq);
    }
    if (expr.kind != Expr::Kind::kBinary) return false;
    const Expr* col_side = nullptr;
    const Expr* val_side = nullptr;
    BinaryOp op = expr.op;
    if (expr.lhs->kind == Expr::Kind::kColumnRef &&
        IsRowIndependent(*expr.rhs)) {
      col_side = expr.lhs.get();
      val_side = expr.rhs.get();
    } else if (expr.rhs->kind == Expr::Kind::kColumnRef &&
               IsRowIndependent(*expr.lhs)) {
      col_side = expr.rhs.get();
      val_side = expr.lhs.get();
      switch (op) {
        case BinaryOp::kLt: op = BinaryOp::kGt; break;
        case BinaryOp::kLe: op = BinaryOp::kGe; break;
        case BinaryOp::kGt: op = BinaryOp::kLt; break;
        case BinaryOp::kGe: op = BinaryOp::kLe; break;
        default: break;
      }
    } else {
      return false;
    }
    auto idx = schema.ColumnIndex(col_side->column);
    if (!idx.ok() || *idx != column) return false;
    // NULL-valued comparisons match nothing and are never folded into scan
    // bounds; they must disqualify subsumption.
    auto value =
        EvaluateExpr(*val_side, nullptr, nullptr, db_->functions_, params_);
    if (!value.ok() || value->is_null()) return false;
    if (chosen_eq != nullptr) {
      return op == BinaryOp::kEq &&
             Value::Compare(*value, chosen_eq->value) == 0;
    }
    return op == BinaryOp::kLt || op == BinaryOp::kLe ||
           op == BinaryOp::kGt || op == BinaryOp::kGe;
  }

  /// Selects an access path, gathers candidate rows, applies the full
  /// predicate, and returns matching RowIds in access order.
  ///
  /// `limit_hint` (>= 0), `order_col` and `order_desc` enable limit
  /// pushdown: when the scan's bounds prove the whole predicate and the
  /// index order satisfies the requested ORDER BY (or there is none), the
  /// scan stops after `limit_hint` rows.
  /// `match_rows`, when non-null and the vectorized filter ran, receives the
  /// row pointer for each returned RowId (1:1 with the result). Callers must
  /// check sizes match before using it — scalar paths leave it empty — and
  /// must not mutate the table while holding the pointers.
  Result<std::vector<RowId>> CollectMatches(
      Table* table, const Expr* where, ExecResult* meta,
      int64_t limit_hint = -1, size_t order_col = SIZE_MAX,
      bool order_desc = false,
      std::vector<const Row*>* match_rows = nullptr) {
    const Schema& schema = table->schema();
    std::vector<Constraint> constraints;
    if (where != nullptr) {
      CLOUDDB_RETURN_IF_ERROR(ExtractConstraints(*where, schema, &constraints));
    }
    // Predicate shape: the ordered (op, column) pairs of the extracted
    // constraints. Values are excluded on purpose — NULL-valued comparisons
    // were already dropped by ExtractConstraints, and everything
    // value-dependent (bounds, subsumption) is recomputed below.
    std::string shape;
    if (where == nullptr) {
      shape = "-";
    } else {
      shape.reserve(constraints.size() * 4);
      for (const Constraint& c : constraints) {
        shape += static_cast<char>('a' + static_cast<int>(c.op));
        shape += std::to_string(c.column);
        shape += ';';
      }
    }
    // Access-path selection: PK equality, then any indexed equality, then an
    // indexed range, then full scan. The decision depends only on the shape
    // and the table's index set, so it is memoized per shape (the memo is
    // cleared when an index is added).
    auto pk = schema.primary_key_index();
    const Constraint* chosen_eq = nullptr;
    size_t range_col = SIZE_MAX;
    PlanHint local;
    const PlanHint* hint = table->FindPlanHint(shape);
    if (hint != nullptr) {
      switch (hint->kind) {
        case AccessPathKind::kPkEq:
        case AccessPathKind::kIndexEq:
          chosen_eq = &constraints[hint->chosen];
          break;
        case AccessPathKind::kIndexRange:
          range_col = hint->chosen;
          break;
        case AccessPathKind::kTableScan:
          break;
      }
    } else {
      for (const Constraint& c : constraints) {
        if (c.op != BinaryOp::kEq || !table->HasIndexOn(c.column)) continue;
        if (pk.has_value() && c.column == *pk) {
          chosen_eq = &c;
          break;  // best possible
        }
        if (chosen_eq == nullptr) chosen_eq = &c;
      }
      if (chosen_eq == nullptr) {
        for (const Constraint& c : constraints) {
          if (c.op != BinaryOp::kEq && table->HasIndexOn(c.column)) {
            range_col = c.column;
            break;
          }
        }
      }
      if (chosen_eq != nullptr) {
        bool is_pk = pk.has_value() && chosen_eq->column == *pk;
        local.kind = is_pk ? AccessPathKind::kPkEq : AccessPathKind::kIndexEq;
        local.chosen = static_cast<size_t>(chosen_eq - constraints.data());
        local.plan =
            StrFormat(is_pk ? "pk_eq(%s)" : "index_eq(%s)",
                      schema.columns()[chosen_eq->column].name.c_str());
        local.ordered_by = schema.columns()[chosen_eq->column].name;
      } else if (range_col != SIZE_MAX) {
        local.kind = AccessPathKind::kIndexRange;
        local.chosen = range_col;
        local.plan = StrFormat("index_range(%s)",
                               schema.columns()[range_col].name.c_str());
        local.ordered_by = schema.columns()[range_col].name;
      } else {
        local.kind = AccessPathKind::kTableScan;
        local.plan = "table_scan";
      }
      table->MemoizePlanHint(shape, local);
      hint = &local;
    }

    // Limit pushdown: decide whether the scan alone proves the predicate
    // and delivers the requested order.
    size_t scan_col = chosen_eq != nullptr ? chosen_eq->column : range_col;
    bool subsumed =
        where == nullptr ||
        (scan_col != SIZE_MAX &&
         PredicateSubsumedByScan(*where, schema, scan_col, chosen_eq));
    int64_t early_stop = -1;
    if (limit_hint >= 0 && subsumed) {
      bool order_satisfied =
          order_col == SIZE_MAX ||
          (scan_col != SIZE_MAX && order_col == scan_col && !order_desc);
      if (order_satisfied && (scan_col != SIZE_MAX || where == nullptr)) {
        // Unordered full scans with no predicate may also stop early.
        if (scan_col != SIZE_MAX || order_col == SIZE_MAX) {
          early_stop = limit_hint;
        }
      }
    }
    auto keep_scanning = [&](const std::vector<RowId>& collected) {
      return early_stop < 0 ||
             static_cast<int64_t>(collected.size()) < early_stop;
    };

    // Vectorized filtering: when the predicate is not proven by the scan
    // bounds, try the compiled bytecode path. The program comes from the
    // statement cache (compiled once at insert) or is JIT-compiled for
    // uncached statements; binding resolves its column names against the
    // live schema each execution, so a program cached before a DDL change
    // can never read stale slots — it either rebinds or falls back.
    const VecProgram* prog = nullptr;
    VecProgram local_prog;
    if (db_->options_.vectorized_exec && where != nullptr && !subsumed) {
      if (compiled_where_ != nullptr) {
        prog = compiled_where_;
      } else if (jit_predicates_ && CompilePredicate(*where, &local_prog)) {
        prog = &local_prog;
      }
      if (prog != nullptr &&
          !BindProgram(*prog, schema, params_, &db_->vec_binding_)) {
        prog = nullptr;
      }
      if (prog == nullptr) ++db_->vec_stats_.scalar_fallbacks;
    }

    std::vector<RowId> candidates;
    if (chosen_eq != nullptr) {
      meta->plan = hint->plan;
      meta->scan_ordered_by = hint->ordered_by;
      CLOUDDB_RETURN_IF_ERROR(table->ScanIndex(
          chosen_eq->column, &chosen_eq->value, true, &chosen_eq->value, true,
          [&](RowId id) {
            candidates.push_back(id);
            return keep_scanning(candidates);
          }));
    } else if (range_col != SIZE_MAX) {
      // Combine all range constraints on the chosen column into bounds.
      const Value* lo = nullptr;
      const Value* hi = nullptr;
      bool lo_inc = true;
      bool hi_inc = true;
      for (const Constraint& c : constraints) {
        if (c.column != range_col) continue;
        switch (c.op) {
          case BinaryOp::kGt:
          case BinaryOp::kGe:
            if (lo == nullptr || c.value > *lo) {
              lo = &c.value;
              lo_inc = c.op == BinaryOp::kGe;
            }
            break;
          case BinaryOp::kLt:
          case BinaryOp::kLe:
            if (hi == nullptr || c.value < *hi) {
              hi = &c.value;
              hi_inc = c.op == BinaryOp::kLe;
            }
            break;
          default:
            break;
        }
      }
      meta->plan = hint->plan;
      meta->scan_ordered_by = hint->ordered_by;
      CLOUDDB_RETURN_IF_ERROR(
          table->ScanIndex(range_col, lo, lo_inc, hi, hi_inc, [&](RowId id) {
            candidates.push_back(id);
            return keep_scanning(candidates);
          }));
    } else {
      meta->plan = hint->plan;
      if (prog != nullptr) {
        // Column-chunk scan: materialize 1024-row batches straight off the
        // row store and filter each with the compiled kernels — no per-row
        // std::function dispatch, no tree walk, no candidate list. A table
        // scan with a residual predicate never has early_stop set (limit
        // pushdown requires subsumption), so visiting every row keeps
        // rows_examined identical to the scalar path.
        std::vector<RowId> matches;
        table->ForEachChunk<kVecChunkSize>(
            [&](const RowId* ids, const Row* const* rows, size_t len) {
              db_->vec_arena_.Reset();
              uint32_t sel[kVecChunkSize];
              size_t m = VecFilterChunk(db_->vec_binding_, rows, len, sel,
                                        &db_->vec_arena_);
              for (size_t j = 0; j < m; ++j) {
                matches.push_back(ids[sel[j]]);
                if (match_rows != nullptr) {
                  match_rows->push_back(rows[sel[j]]);
                }
              }
              meta->rows_examined += static_cast<int64_t>(len);
              ++db_->vec_stats_.chunks_filtered;
              db_->vec_stats_.rows_filtered += static_cast<int64_t>(len);
              return true;
            });
        return matches;
      }
      table->ForEachRow([&](RowId id, const Row&) {
        candidates.push_back(id);
        return keep_scanning(candidates);
      });
    }
    meta->rows_examined += static_cast<int64_t>(candidates.size());

    if (where == nullptr || subsumed) return candidates;
    std::vector<RowId> matches;
    matches.reserve(candidates.size());
    if (prog != nullptr) {
      // Residual filter after an index scan: batch the candidates into
      // chunks and run the same kernels over them.
      const Row* rows_buf[kVecChunkSize];
      uint32_t sel[kVecChunkSize];
      for (size_t base = 0; base < candidates.size(); base += kVecChunkSize) {
        size_t len = std::min(kVecChunkSize, candidates.size() - base);
        for (size_t j = 0; j < len; ++j) {
          rows_buf[j] = table->Get(candidates[base + j]);
        }
        db_->vec_arena_.Reset();
        size_t m = VecFilterChunk(db_->vec_binding_, rows_buf, len, sel,
                                  &db_->vec_arena_);
        for (size_t j = 0; j < m; ++j) {
          matches.push_back(candidates[base + sel[j]]);
          if (match_rows != nullptr) match_rows->push_back(rows_buf[sel[j]]);
        }
        ++db_->vec_stats_.chunks_filtered;
        db_->vec_stats_.rows_filtered += static_cast<int64_t>(len);
      }
      return matches;
    }
    for (RowId id : candidates) {
      const Row* row = table->Get(id);
      CLOUDDB_ASSIGN_OR_RETURN(
          bool keep, EvaluatePredicate(*where, &schema, row, db_->functions_,
                                       params_));
      if (keep) matches.push_back(id);
    }
    return matches;
  }

  Database* db_;
  Session* session_;
  const std::vector<Value>* params_;  // null unless running a cached template
  const VecProgram* compiled_where_;  // cache-compiled WHERE bytecode or null
  bool jit_predicates_;               // may compile uncached predicates
  std::vector<RowOp>* capture_;       // row-based writeset sink or null
};

Database::Database(DatabaseOptions options)
    : options_(std::move(options)),
      functions_(options_.now_micros),
      statement_cache_(options_.statement_cache_capacity) {
  autocommit_session_ = std::make_unique<Session>(0);
}

std::unique_ptr<Session> Database::CreateSession() {
  return std::make_unique<Session>(next_session_id_++);
}

Result<ExecResult> Database::Execute(const std::string& sql,
                                     Session* session) {
  if (options_.statement_cache) {
    Result<PreparedCall> call = statement_cache_.Prepare(sql);
    if (call.ok()) return ExecutePrepared(*call, sql, session);
    // Any Prepare failure — uncacheable shape, template parse failure, even
    // a tokenizer error — falls through to the parse-every-time path, which
    // reproduces cache-off behavior (and error text) byte for byte.
  }
  CLOUDDB_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  return ExecuteParsed(stmt, sql, session);
}

Result<PreparedCall> Database::Prepare(const std::string& sql) {
  return statement_cache_.Prepare(sql);
}

Result<ExecResult> Database::ExecutePrepared(const PreparedCall& call,
                                             const std::string& sql_text,
                                             Session* session) {
  return ExecuteStatement(call.prepared->statement, &call.params, sql_text,
                          session, call.prepared.get());
}

Result<ExecResult> Database::ExecuteParsed(const Statement& stmt,
                                           const std::string& sql_text,
                                           Session* session) {
  return ExecuteStatement(stmt, nullptr, sql_text, session,
                          /*prepared=*/nullptr);
}

Result<ExecResult> Database::ExecuteStatement(
    const Statement& stmt, const std::vector<Value>* params,
    const std::string& sql_text, Session* session,
    const PreparedStatement* prepared) {
  if (session == nullptr) session = autocommit_session_.get();

  // Transaction control.
  if (std::holds_alternative<BeginStatement>(stmt)) {
    if (session->in_explicit_transaction()) {
      return Status::FailedPrecondition("transaction already open");
    }
    session->BeginExplicit();
    return ExecResult{};
  }
  if (std::holds_alternative<CommitStatement>(stmt)) {
    CommitSession(session);  // COMMIT outside a transaction is a no-op
    return ExecResult{};
  }
  if (std::holds_alternative<RollbackStatement>(stmt)) {
    RollbackSession(session);
    return ExecResult{};
  }

  // DDL implicitly commits any open transaction (MySQL semantics) and is
  // itself not transactional.
  if (IsDdl(stmt) && session->in_explicit_transaction()) {
    CommitSession(session);
  }

  bool is_write = IsWriteStatement(stmt);
  std::string lock_key = TableKey(TargetTable(stmt));
  Status lock_status =
      is_write ? lock_manager_.AcquireWrite(session->id(), lock_key)
               : lock_manager_.AcquireRead(session->id(), lock_key);
  if (!lock_status.ok()) {
    // A lock conflict aborts the whole transaction (no-wait policy).
    RollbackSession(session);
    return lock_status;
  }

  const VecProgram* compiled_where =
      prepared != nullptr && prepared->has_where_program
          ? &prepared->where_program
          : nullptr;
  // Row-based capture: only statements that will reach the binlog capture
  // row images, and only when the coverage rule admits them (no DDL, no
  // function calls — see StatementHasFunctionCall).
  bool binlog_active = options_.enable_binlog && !binlog_suppressed_;
  bool row_capture = options_.row_based_repl && binlog_active && is_write &&
                     !IsDdl(stmt) && !StatementHasFunctionCall(stmt);
  std::vector<RowOp> captured_ops;
  Executor executor(this, session, params, compiled_where,
                    /*jit_predicates=*/prepared == nullptr,
                    row_capture ? &captured_ops : nullptr);
  Result<ExecResult> result = executor.Run(stmt);
  if (!result.ok()) {
    RollbackSession(session);
    return result;
  }
  // DDL changed the catalog: cached templates (and the plan hints resolved
  // through them) must not survive it.
  if (IsDdl(stmt)) statement_cache_.Invalidate();
  if (is_write) {
    session->pending_binlog().push_back(sql_text);
    if (options_.row_based_repl && binlog_active) {
      session->pending_writesets().push_back(
          StatementWriteset{row_capture, std::move(captured_ops)});
    }
  }
  if (!session->in_explicit_transaction()) CommitSession(session);
  return result;
}

Table* Database::GetTable(const std::string& name) {
  auto it = tables_.find(TableKey(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(TableKey(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

void Database::SetTimeSource(std::function<int64_t()> now_micros) {
  options_.now_micros = now_micros;
  functions_.SetTimeSource(std::move(now_micros));
}

bool Database::ValidateAllIndexes(std::string* error) const {
  for (const auto& [key, table] : tables_) {
    if (!table->ValidateIndexes(error)) return false;
  }
  return true;
}

bool Database::ContentsEqual(const Database& a, const Database& b,
                             const std::vector<std::string>& ignore_tables) {
  if (a.tables_.size() != b.tables_.size()) return false;
  auto ignored = [&](const std::string& key) {
    for (const std::string& name : ignore_tables) {
      if (TableKey(name) == key) return true;
    }
    return false;
  };
  for (const auto& [key, table] : a.tables_) {
    auto it = b.tables_.find(key);
    if (it == b.tables_.end()) return false;
    if (ignored(key)) continue;
    if (!Table::ContentsEqual(*table, *it->second)) return false;
  }
  return true;
}

void Database::CommitSession(Session* session) {
  if (options_.enable_binlog && !binlog_suppressed_ &&
      !session->pending_binlog().empty()) {
    int64_t now =
        options_.now_micros ? options_.now_micros() : 0;
    // A full set of writesets (one per statement) makes this a row-based
    // event. A partial set — the toggle flipped mid-transaction — is
    // discarded: the event falls back to statement-only, which is always
    // correct to apply.
    if (session->pending_writesets().size() ==
        session->pending_binlog().size()) {
      binlog_.Append(std::move(session->pending_binlog()),
                     std::move(session->pending_writesets()), now);
    } else {
      binlog_.Append(std::move(session->pending_binlog()), now);
    }
  }
  lock_manager_.ReleaseAll(session->id());
  session->ClearTransactionState();
}

void Database::RollbackSession(Session* session) {
  auto& undo = session->undo();
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    Table* table = GetTable(it->table);
    assert(table != nullptr);
    Status st;
    switch (it->kind) {
      case UndoRecord::Kind::kInsert:
        st = table->Delete(it->row_id);
        break;
      case UndoRecord::Kind::kDelete:
        st = table->RestoreRow(it->row_id, std::move(it->old_row));
        break;
      case UndoRecord::Kind::kUpdate:
        st = table->Update(it->row_id, std::move(it->old_row));
        break;
    }
    assert(st.ok());
    (void)st;
  }
  lock_manager_.ReleaseAll(session->id());
  session->ClearTransactionState();
}

}  // namespace clouddb::db
