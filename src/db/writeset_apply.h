#ifndef CLOUDDB_DB_WRITESET_APPLY_H_
#define CLOUDDB_DB_WRITESET_APPLY_H_

#include <cstdint>

#include "common/result.h"
#include "db/writeset.h"

namespace clouddb::db {

class Database;
class Session;

/// Row-based replication's slave-side fast path: applies one covered
/// statement's row ops to `db` through Table::ApplyRowDelta — no lexer, no
/// parser, no planner, no expression evaluation. This translation unit is
/// forbidden from including sql_parser/sql_lexer by the clouddb-apply-noparse
/// lint rule, the same way clouddb-vec-alloc keeps allocation out of the
/// vector kernels.
///
/// The statement applies atomically: table write locks are taken under
/// `session`'s identity first (2PL parity with statement apply), every op
/// already applied is inverted on a mid-statement failure, and all locks are
/// released before returning. Returns the number of rows affected.
Result<int64_t> ApplyStatementWriteset(Database* db, Session* session,
                                       const StatementWriteset& ws);

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_WRITESET_APPLY_H_
