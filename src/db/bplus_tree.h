#ifndef CLOUDDB_DB_BPLUS_TREE_H_
#define CLOUDDB_DB_BPLUS_TREE_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace clouddb::db {

/// In-memory B+Tree: the engine's index structure.
///
/// - Unique keys (composite keys are used for non-unique secondary indexes).
/// - Leaves are linked for ordered range scans.
/// - Full rebalancing on erase (borrow from siblings, else merge).
/// - `Validate()` checks all structural invariants; the property-based tests
///   run it against a std::map reference model after every mutation batch.
///
/// `MaxKeys` is the fan-out (max keys per node); nodes other than the root
/// hold at least MaxKeys/2 keys.
template <typename K, typename V, typename Less = std::less<K>,
          int MaxKeys = 32>
class BPlusTree {
  static_assert(MaxKeys >= 3, "MaxKeys must be at least 3");

 public:
  BPlusTree() : root_(std::make_unique<Node>(/*leaf=*/true)) {}

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept = default;
  BPlusTree& operator=(BPlusTree&&) noexcept = default;

  /// Inserts; returns false (and leaves the tree unchanged) if `key` exists.
  bool Insert(const K& key, V value) {
    return InsertImpl(key, std::move(value), /*assign=*/false);
  }

  /// Inserts or overwrites. Returns true if a new key was inserted.
  bool InsertOrAssign(const K& key, V value) {
    return InsertImpl(key, std::move(value), /*assign=*/true);
  }

  /// Pointer to the value for `key`, or nullptr.
  const V* Find(const K& key) const {
    const Node* leaf = DescendToLeaf(key);
    int i = LowerBound(leaf->keys, key);
    if (i < static_cast<int>(leaf->keys.size()) && Equal(leaf->keys[i], key)) {
      return &leaf->values[static_cast<size_t>(i)];
    }
    return nullptr;
  }

  V* FindMutable(const K& key) {
    return const_cast<V*>(static_cast<const BPlusTree*>(this)->Find(key));
  }

  bool Contains(const K& key) const { return Find(key) != nullptr; }

  /// Removes `key`; returns false if absent.
  bool Erase(const K& key) {
    bool erased = EraseImpl(root_.get(), key);
    if (erased) {
      --size_;
      // Shrink the root if it became a single-child internal node.
      if (!root_->leaf && root_->keys.empty()) {
        std::unique_ptr<Node> child = std::move(root_->children[0]);
        root_ = std::move(child);
      }
    }
    return erased;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Clear() {
    root_ = std::make_unique<Node>(/*leaf=*/true);
    size_ = 0;
  }

  /// Replaces the tree's contents with `items`, which must be strictly
  /// increasing by key. Builds bottom-up at full fan-out — O(n) with no
  /// comparisons or splits, versus O(n log n) with node splits for repeated
  /// Insert — which is what makes CREATE INDEX backfill cheap.
  ///
  /// Occupancy: every leaf except possibly the last is packed to MaxKeys; a
  /// short tail leaf borrows from its (full) left neighbor so the >= kMinKeys
  /// invariant holds. Internal levels pack MaxKeys+1 children per node with
  /// the same tail adjustment. The result passes Validate().
  void BulkLoad(std::vector<std::pair<K, V>> items) {
    Clear();
    size_t n = items.size();
    if (n == 0) return;
    size_ = n;
    // Leaves, packed to MaxKeys.
    std::vector<std::unique_ptr<Node>> level;
    for (size_t i = 0; i < n;) {
      assert(i == 0 || less_(items[i - 1].first, items[i].first));
      size_t take = std::min(static_cast<size_t>(MaxKeys), n - i);
      auto leaf = std::make_unique<Node>(/*leaf=*/true);
      for (size_t j = 0; j < take; ++j) {
        // NOLINTNEXTLINE(clouddb-bounds): i + j < i + take <= n: take = min(MaxKeys, n - i); min() composite bounds are outside the relational-fact domain
        leaf->keys.push_back(std::move(items[i + j].first));
        // NOLINTNEXTLINE(clouddb-bounds): same take-bounded walk as the line above
        leaf->values.push_back(std::move(items[i + j].second));
      }
      i += take;
      level.push_back(std::move(leaf));
    }
    // A short tail leaf borrows from its full left neighbor; the donor keeps
    // MaxKeys - deficit >= kMinKeys keys since deficit < kMinKeys <= MaxKeys/2.
    if (level.size() > 1) {
      Node* last = level.back().get();
      if (static_cast<int>(last->keys.size()) < kMinKeys) {
        Node* donor = level[level.size() - 2].get();
        size_t deficit = static_cast<size_t>(kMinKeys) - last->keys.size();
        last->keys.insert(last->keys.begin(),
                          std::make_move_iterator(donor->keys.end() - deficit),
                          std::make_move_iterator(donor->keys.end()));
        last->values.insert(
            last->values.begin(),
            std::make_move_iterator(donor->values.end() - deficit),
            std::make_move_iterator(donor->values.end()));
        donor->keys.resize(donor->keys.size() - deficit);
        donor->values.resize(donor->values.size() - deficit);
      }
    }
    for (size_t j = 0; j + 1 < level.size(); ++j) {
      level[j]->next = level[j + 1].get();
      level[j + 1]->prev = level[j].get();
    }
    // Internal levels. Separators follow the existing convention (child i
    // holds keys < keys[i], equal goes right): the separator before child j
    // is a copy of that subtree's lowest key, tracked per node in `lows`.
    std::vector<K> lows;
    lows.reserve(level.size());
    for (const auto& leaf : level) lows.push_back(leaf->keys.front());
    while (level.size() > 1) {
      std::vector<std::unique_ptr<Node>> parents;
      std::vector<K> parent_lows;
      size_t count = level.size();
      for (size_t idx = 0; idx < count;) {
        size_t remaining = count - idx;
        size_t take = std::min(static_cast<size_t>(MaxKeys) + 1, remaining);
        size_t rest = remaining - take;
        // Don't strand a tail below kMinKeys+1 children: shrink this node
        // instead (it stays >= kMinKeys+1 because MaxKeys >= 2 * kMinKeys).
        if (rest > 0 && rest < static_cast<size_t>(kMinKeys) + 1) {
          take = remaining - (static_cast<size_t>(kMinKeys) + 1);
        }
        auto parent = std::make_unique<Node>(/*leaf=*/false);
        // NOLINTNEXTLINE(clouddb-bounds): idx < level.size() loop invariant and lows arity tracks level
        parent_lows.push_back(lows[idx]);
        for (size_t j = 0; j < take; ++j) {
          // NOLINTNEXTLINE(clouddb-bounds): idx + j < idx + take <= level.size(); lows.size() == level.size() by construction
          if (j > 0) parent->keys.push_back(std::move(lows[idx + j]));
          // NOLINTNEXTLINE(clouddb-bounds): idx + j < idx + take <= level.size() chunked-walk invariant
          parent->children.push_back(std::move(level[idx + j]));
        }
        idx += take;
        parents.push_back(std::move(parent));
      }
      level = std::move(parents);
      lows = std::move(parent_lows);
    }
    root_ = std::move(level.front());
  }

  /// Visits entries with lo <= key <= hi in key order (bounds optional via
  /// nullptr; `*_inclusive` ignored for absent bounds). The visitor returns
  /// false to stop early. Visitor signature: bool(const K&, const V&).
  template <typename Visitor>
  void Scan(const K* lo, bool lo_inclusive, const K* hi, bool hi_inclusive,
            Visitor&& visit) const {
    const Node* leaf;
    int i;
    if (lo != nullptr) {
      leaf = DescendToLeaf(*lo);
      i = LowerBound(leaf->keys, *lo);
      if (!lo_inclusive) {
        while (i < static_cast<int>(leaf->keys.size()) &&
               Equal(leaf->keys[static_cast<size_t>(i)], *lo)) {
          ++i;
        }
      }
    } else {
      leaf = LeftmostLeaf();
      i = 0;
    }
    while (leaf != nullptr) {
      for (; i < static_cast<int>(leaf->keys.size()); ++i) {
        const K& k = leaf->keys[static_cast<size_t>(i)];
        if (hi != nullptr) {
          if (less_(*hi, k)) return;                      // k > hi
          if (!hi_inclusive && !less_(k, *hi)) return;    // k == hi, exclusive
        }
        if (!visit(k, leaf->values[static_cast<size_t>(i)])) return;
      }
      leaf = leaf->next;
      i = 0;
    }
  }

  /// Visits all entries in order.
  template <typename Visitor>
  void ScanAll(Visitor&& visit) const {
    Scan(nullptr, true, nullptr, true, std::forward<Visitor>(visit));
  }

  /// Tree height (1 = just a leaf root).
  size_t Height() const {
    size_t h = 1;
    const Node* n = root_.get();
    while (!n->leaf) {
      n = n->children[0].get();
      ++h;
    }
    return h;
  }

  /// Verifies all invariants: key ordering, node occupancy, child/key arity,
  /// uniform leaf depth, leaf-link consistency, separator correctness, and
  /// size bookkeeping. On failure returns false and describes the problem.
  bool Validate(std::string* error) const {
    size_t counted = 0;
    const K* min_seen = nullptr;
    int depth = -1;
    if (!ValidateNode(root_.get(), /*is_root=*/true, nullptr, nullptr, 0,
                      &depth, &counted, error)) {
      return false;
    }
    if (counted != size_) {
      if (error) *error = "size mismatch";
      return false;
    }
    // Leaf chain must enumerate exactly `size_` strictly increasing keys.
    const Node* leaf = LeftmostLeaf();
    size_t chain = 0;
    while (leaf != nullptr) {
      for (const K& k : leaf->keys) {
        if (min_seen != nullptr && !less_(*min_seen, k)) {
          if (error) *error = "leaf chain keys not strictly increasing";
          return false;
        }
        min_seen = &k;
        ++chain;
      }
      leaf = leaf->next;
    }
    if (chain != size_) {
      if (error) *error = "leaf chain size mismatch";
      return false;
    }
    return true;
  }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}

    bool leaf;
    std::vector<K> keys;
    // Internal nodes: children.size() == keys.size() + 1.
    std::vector<std::unique_ptr<Node>> children;
    // Leaves only:
    std::vector<V> values;
    Node* next = nullptr;
    Node* prev = nullptr;
  };

  static constexpr int kMinKeys = MaxKeys / 2;

  bool Equal(const K& a, const K& b) const {
    return !less_(a, b) && !less_(b, a);
  }

  /// First index i such that keys[i] >= key.
  int LowerBound(const std::vector<K>& keys, const K& key) const {
    int lo = 0;
    int hi = static_cast<int>(keys.size());
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (less_(keys[static_cast<size_t>(mid)], key)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Child slot to descend into for `key` in internal node `n`:
  /// first i such that key < keys[i], children index i.
  int ChildIndex(const Node* n, const K& key) const {
    int i = LowerBound(n->keys, key);
    // Separator convention: child i holds keys < keys[i]; keys equal to the
    // separator go right, so advance past equal separators.
    if (i < static_cast<int>(n->keys.size()) &&
        Equal(n->keys[static_cast<size_t>(i)], key)) {
      ++i;
    }
    return i;
  }

  const Node* DescendToLeaf(const K& key) const {
    const Node* n = root_.get();
    while (!n->leaf) {
      n = n->children[static_cast<size_t>(ChildIndex(n, key))].get();
    }
    return n;
  }

  const Node* LeftmostLeaf() const {
    const Node* n = root_.get();
    while (!n->leaf) n = n->children[0].get();
    return n;
  }

  struct SplitResult {
    K separator;
    std::unique_ptr<Node> right;
  };

  bool InsertImpl(const K& key, V value, bool assign) {
    bool inserted = false;
    auto split = InsertRecurse(root_.get(), key, std::move(value), assign,
                               &inserted);
    if (split.has_value()) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      new_root->keys.push_back(std::move(split->separator));
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(split->right));
      root_ = std::move(new_root);
    }
    if (inserted) ++size_;
    return inserted;
  }

  std::optional<SplitResult> InsertRecurse(Node* n, const K& key, V value,
                                           bool assign, bool* inserted) {
    if (n->leaf) {
      int i = LowerBound(n->keys, key);
      if (i < static_cast<int>(n->keys.size()) &&
          Equal(n->keys[static_cast<size_t>(i)], key)) {
        if (assign) n->values[static_cast<size_t>(i)] = std::move(value);
        *inserted = false;
        return std::nullopt;
      }
      n->keys.insert(n->keys.begin() + i, key);
      n->values.insert(n->values.begin() + i, std::move(value));
      *inserted = true;
      if (static_cast<int>(n->keys.size()) <= MaxKeys) return std::nullopt;
      return SplitLeaf(n);
    }
    int ci = ChildIndex(n, key);
    auto split = InsertRecurse(n->children[static_cast<size_t>(ci)].get(), key,
                               std::move(value), assign, inserted);
    if (!split.has_value()) return std::nullopt;
    n->keys.insert(n->keys.begin() + ci, std::move(split->separator));
    n->children.insert(n->children.begin() + ci + 1, std::move(split->right));
    if (static_cast<int>(n->keys.size()) <= MaxKeys) return std::nullopt;
    return SplitInternal(n);
  }

  SplitResult SplitLeaf(Node* n) {
    int mid = static_cast<int>(n->keys.size()) / 2;
    auto right = std::make_unique<Node>(/*leaf=*/true);
    right->keys.assign(std::make_move_iterator(n->keys.begin() + mid),
                       std::make_move_iterator(n->keys.end()));
    right->values.assign(std::make_move_iterator(n->values.begin() + mid),
                         std::make_move_iterator(n->values.end()));
    n->keys.resize(static_cast<size_t>(mid));
    n->values.resize(static_cast<size_t>(mid));
    right->next = n->next;
    right->prev = n;
    if (n->next != nullptr) n->next->prev = right.get();
    n->next = right.get();
    // Leaf split: the separator is a *copy* of the right node's first key.
    return SplitResult{right->keys.front(), std::move(right)};
  }

  SplitResult SplitInternal(Node* n) {
    assert(!n->keys.empty());  // only overfull nodes split
    int mid = static_cast<int>(n->keys.size()) / 2;
    auto right = std::make_unique<Node>(/*leaf=*/false);
    K separator = std::move(n->keys[static_cast<size_t>(mid)]);
    right->keys.assign(std::make_move_iterator(n->keys.begin() + mid + 1),
                       std::make_move_iterator(n->keys.end()));
    right->children.assign(
        std::make_move_iterator(n->children.begin() + mid + 1),
        std::make_move_iterator(n->children.end()));
    n->keys.resize(static_cast<size_t>(mid));
    n->children.resize(static_cast<size_t>(mid) + 1);
    return SplitResult{std::move(separator), std::move(right)};
  }

  bool EraseImpl(Node* n, const K& key) {
    if (n->leaf) {
      int i = LowerBound(n->keys, key);
      if (i >= static_cast<int>(n->keys.size()) ||
          !Equal(n->keys[static_cast<size_t>(i)], key)) {
        return false;
      }
      n->keys.erase(n->keys.begin() + i);
      n->values.erase(n->values.begin() + i);
      return true;
    }
    int ci = ChildIndex(n, key);
    Node* child = n->children[static_cast<size_t>(ci)].get();
    bool erased = EraseImpl(child, key);
    if (erased && static_cast<int>(child->keys.size()) < kMinKeys) {
      Rebalance(n, ci);
    }
    return erased;
  }

  /// Child `ci` of `parent` underflowed: borrow from a sibling or merge.
  void Rebalance(Node* parent, int ci) {
    // NOLINTNEXTLINE(clouddb-bounds): ci indexes a live child: Rebalance is only called with ci from ChildIndex, ci < children.size()
    Node* child = parent->children[static_cast<size_t>(ci)].get();
    Node* left =
        // NOLINTNEXTLINE(clouddb-bounds): ci > 0 on this branch and ci < children.size() caller invariant
        ci > 0 ? parent->children[static_cast<size_t>(ci) - 1].get() : nullptr;
    Node* right = ci + 1 < static_cast<int>(parent->children.size())
                      ? parent->children[static_cast<size_t>(ci) + 1].get()
                      : nullptr;

    if (left != nullptr && static_cast<int>(left->keys.size()) > kMinKeys) {
      BorrowFromLeft(parent, ci, left, child);
      return;
    }
    if (right != nullptr && static_cast<int>(right->keys.size()) > kMinKeys) {
      BorrowFromRight(parent, ci, child, right);
      return;
    }
    if (left != nullptr) {
      MergeChildren(parent, ci - 1);
    } else {
      assert(right != nullptr);
      MergeChildren(parent, ci);
    }
  }

  void BorrowFromLeft(Node* parent, int ci, Node* left, Node* child) {
    if (child->leaf) {
      child->keys.insert(child->keys.begin(), std::move(left->keys.back()));
      child->values.insert(child->values.begin(),
                           std::move(left->values.back()));
      left->keys.pop_back();
      left->values.pop_back();
      parent->keys[static_cast<size_t>(ci) - 1] = child->keys.front();
    } else {
      // Rotate through the parent separator.
      child->keys.insert(child->keys.begin(),
                         std::move(parent->keys[static_cast<size_t>(ci) - 1]));
      parent->keys[static_cast<size_t>(ci) - 1] = std::move(left->keys.back());
      left->keys.pop_back();
      child->children.insert(child->children.begin(),
                             std::move(left->children.back()));
      left->children.pop_back();
    }
  }

  void BorrowFromRight(Node* parent, int ci, Node* child, Node* right) {
    if (child->leaf) {
      child->keys.push_back(std::move(right->keys.front()));
      child->values.push_back(std::move(right->values.front()));
      right->keys.erase(right->keys.begin());
      right->values.erase(right->values.begin());
      parent->keys[static_cast<size_t>(ci)] = right->keys.front();
    } else {
      child->keys.push_back(std::move(parent->keys[static_cast<size_t>(ci)]));
      parent->keys[static_cast<size_t>(ci)] = std::move(right->keys.front());
      right->keys.erase(right->keys.begin());
      child->children.push_back(std::move(right->children.front()));
      right->children.erase(right->children.begin());
    }
  }

  /// Merges children li and li+1 of `parent` into child li.
  void MergeChildren(Node* parent, int li) {
    Node* left = parent->children[static_cast<size_t>(li)].get();
    std::unique_ptr<Node> right_owner =
        std::move(parent->children[static_cast<size_t>(li) + 1]);
    Node* right = right_owner.get();
    if (left->leaf) {
      for (size_t i = 0; i < right->keys.size(); ++i) {
        left->keys.push_back(std::move(right->keys[i]));
        left->values.push_back(std::move(right->values[i]));
      }
      left->next = right->next;
      if (right->next != nullptr) right->next->prev = left;
    } else {
      left->keys.push_back(std::move(parent->keys[static_cast<size_t>(li)]));
      for (auto& k : right->keys) left->keys.push_back(std::move(k));
      for (auto& c : right->children) left->children.push_back(std::move(c));
    }
    parent->keys.erase(parent->keys.begin() + li);
    parent->children.erase(parent->children.begin() + li + 1);
  }

  bool ValidateNode(const Node* n, bool is_root, const K* lower, const K* upper,
                    int depth, int* leaf_depth, size_t* counted,
                    std::string* error) const {
    auto fail = [&](const char* msg) {
      if (error) *error = msg;
      return false;
    };
    // Key ordering within the node, and bounds from ancestors.
    for (size_t i = 0; i < n->keys.size(); ++i) {
      if (i > 0 && !less_(n->keys[i - 1], n->keys[i])) {
        return fail("keys not strictly increasing within node");
      }
      if (lower != nullptr && less_(n->keys[i], *lower)) {
        return fail("key below subtree lower bound");
      }
      if (upper != nullptr && !less_(n->keys[i], *upper) && n->leaf == false) {
        return fail("separator above subtree upper bound");
      }
      if (upper != nullptr && n->leaf && !less_(n->keys[i], *upper)) {
        return fail("leaf key above subtree upper bound");
      }
    }
    if (n->leaf) {
      if (n->keys.size() != n->values.size()) {
        return fail("leaf keys/values arity mismatch");
      }
      if (!is_root && static_cast<int>(n->keys.size()) < kMinKeys) {
        return fail("leaf underflow");
      }
      if (static_cast<int>(n->keys.size()) > MaxKeys) {
        return fail("leaf overflow");
      }
      if (*leaf_depth == -1) *leaf_depth = depth;
      if (*leaf_depth != depth) return fail("leaves at different depths");
      *counted += n->keys.size();
      return true;
    }
    if (n->children.size() != n->keys.size() + 1) {
      return fail("internal node arity mismatch");
    }
    if (!is_root && static_cast<int>(n->keys.size()) < kMinKeys) {
      return fail("internal underflow");
    }
    if (static_cast<int>(n->keys.size()) > MaxKeys) {
      return fail("internal overflow");
    }
    if (is_root && n->keys.empty()) {
      return fail("empty internal root");
    }
    for (size_t i = 0; i < n->children.size(); ++i) {
      // NOLINTNEXTLINE(clouddb-bounds): i >= 1 on this branch and children.size() == keys.size() + 1 arity checked at function entry; two-size equalities are outside the fact domain
      const K* lo = i == 0 ? lower : &n->keys[i - 1];
      // NOLINTNEXTLINE(clouddb-bounds): i != keys.size() on this branch and i < children.size() == keys.size() + 1
      const K* hi = i == n->keys.size() ? upper : &n->keys[i];
      if (!ValidateNode(n->children[i].get(), false, lo, hi, depth + 1,
                        leaf_depth, counted, error)) {
        return false;
      }
    }
    return true;
  }

  Less less_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_BPLUS_TREE_H_
