#ifndef CLOUDDB_DB_TRANSACTION_H_
#define CLOUDDB_DB_TRANSACTION_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/table.h"
#include "db/value.h"
#include "db/writeset.h"

namespace clouddb::db {

/// Table-level lock manager with a *no-wait* conflict policy: a conflicting
/// acquisition fails immediately with Aborted (the caller rolls back and may
/// retry). No-wait keeps the engine free of blocking inside the simulation's
/// single-threaded event loop while still exercising real conflict behaviour
/// between interleaved sessions. Locks are held until commit/rollback (2PL).
class LockManager {
 public:
  LockManager() = default;

  /// Shared lock; multiple readers coexist. Re-entrant per session. Upgrades
  /// are implicit: a session holding the write lock may also "read-lock".
  Status AcquireRead(int64_t session_id, const std::string& table);

  /// Exclusive lock. Fails with Aborted if any other session holds any lock
  /// on `table`. Upgrade from own read lock succeeds iff the session is the
  /// sole reader.
  Status AcquireWrite(int64_t session_id, const std::string& table);

  /// Drops every lock `session_id` holds.
  void ReleaseAll(int64_t session_id);

  bool HoldsRead(int64_t session_id, const std::string& table) const;
  bool HoldsWrite(int64_t session_id, const std::string& table) const;

 private:
  struct TableLock {
    std::set<int64_t> readers;
    std::optional<int64_t> writer;
  };
  // Hashed, not ordered: the lock table is hit once per applied
  // statement and nothing iterates it in key order.
  std::unordered_map<std::string, TableLock> locks_;
};

/// One entry of a transaction's undo log; applied in reverse on rollback.
struct UndoRecord {
  enum class Kind {
    kInsert,  // row was inserted -> undo deletes it
    kDelete,  // row was deleted  -> undo restores old_row at row_id
    kUpdate,  // row was updated  -> undo restores old_row at row_id
  };
  Kind kind;
  std::string table;
  RowId row_id = 0;
  Row old_row;  // kDelete/kUpdate only
};

/// Per-connection execution context. Holds the in-flight transaction state:
/// whether an explicit BEGIN is open, the undo log, and the write-statement
/// text pending for the binlog at commit.
class Session {
 public:
  explicit Session(int64_t id) : id_(id) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  int64_t id() const { return id_; }
  bool in_explicit_transaction() const { return explicit_txn_; }

  // Internal state management (used by Database):
  void BeginExplicit() { explicit_txn_ = true; }
  void ClearTransactionState() {
    explicit_txn_ = false;
    undo_.clear();
    pending_binlog_.clear();
    pending_writesets_.clear();
  }

  std::vector<UndoRecord>& undo() { return undo_; }
  std::vector<std::string>& pending_binlog() { return pending_binlog_; }
  /// Row-based mode: one StatementWriteset per pending_binlog entry (the
  /// row images captured while the statement executed). Left empty when
  /// row-based capture is off.
  std::vector<StatementWriteset>& pending_writesets() {
    return pending_writesets_;
  }

 private:
  int64_t id_;
  bool explicit_txn_ = false;
  std::vector<UndoRecord> undo_;
  std::vector<std::string> pending_binlog_;
  std::vector<StatementWriteset> pending_writesets_;
};

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_TRANSACTION_H_
