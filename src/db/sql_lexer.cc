#include "db/sql_lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "common/str_util.h"
#include "common/result.h"
#include "common/status.h"
#include "db/value.h"

namespace clouddb::db {

namespace {

// Every SQL keyword is pure letters, so the keyword probe can walk a flat
// A–Z trie with case folding done on the fly — one pass over the source
// bytes, no uppercase scratch copy and no hashing. A terminal node holds
// the canonical uppercase spelling (a string literal), which doubles as the
// "is a keyword" answer and the token text.
class KeywordTrie {
 public:
  KeywordTrie() {
    static const char* const kKeywords[] = {
        "CREATE", "TABLE",  "INDEX",  "ON",     "INSERT", "INTO",   "VALUES",
        "SELECT", "FROM",   "WHERE",  "ORDER",  "BY",     "ASC",    "DESC",
        "LIMIT",  "UPDATE", "SET",    "DELETE", "AND",    "NOT",    "NULL",
        "PRIMARY", "KEY",   "INT",    "BIGINT", "DOUBLE", "TEXT",   "VARCHAR",
        "TIMESTAMP", "BEGIN", "COMMIT", "ROLLBACK", "COUNT", "TRUNCATE",
        "IS",     "DROP",   "OR",     "IN",     "BETWEEN",
        "MIN",    "MAX",    "SUM",    "AVG",
    };
    nodes_.emplace_back();  // root
    for (const char* kw : kKeywords) Insert(kw);
  }

  /// Returns the canonical uppercase spelling when `word` is a keyword
  /// (matched case-insensitively), nullptr otherwise.
  const char* Match(const char* word, size_t len) const {
    if (len > kMaxKeywordLen) return nullptr;
    int node = 0;
    for (size_t k = 0; k < len; ++k) {
      char c = word[k];
      if (c >= 'a' && c <= 'z') c = static_cast<char>(c - ('a' - 'A'));
      if (c < 'A' || c > 'Z') return nullptr;  // digits/_ never in keywords
      node = nodes_[static_cast<size_t>(node)].next[c - 'A'];
      if (node == 0) return nullptr;
    }
    return nodes_[static_cast<size_t>(node)].canonical;
  }

  /// Longest keyword ("TIMESTAMP"); longer words skip the walk entirely.
  static constexpr size_t kMaxKeywordLen = 9;

 private:
  struct Node {
    // Child index per letter; 0 (the root, never a child) means "none".
    int16_t next[26] = {};
    const char* canonical = nullptr;
  };

  void Insert(const char* kw) {
    int node = 0;
    for (const char* p = kw; *p != '\0'; ++p) {
      int c = *p - 'A';
      if (nodes_[static_cast<size_t>(node)].next[c] == 0) {
        nodes_[static_cast<size_t>(node)].next[c] =
            static_cast<int16_t>(nodes_.size());
        nodes_.emplace_back();
      }
      node = nodes_[static_cast<size_t>(node)].next[c];
    }
    nodes_[static_cast<size_t>(node)].canonical = kw;
  }

  std::vector<Node> nodes_;
};

const KeywordTrie& Keywords() {
  static const auto* kTrie = new KeywordTrie();
  return *kTrie;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kKeyword && text == kw;
}

bool Token::IsSymbol(const char* sym) const {
  return type == TokenType::kSymbol && text == sym;
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  // Tokens average a handful of bytes of source each; one upfront reservation
  // avoids the O(log n) vector regrowths per statement.
  out.reserve(sql.size() / 4 + 4);
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(sql[j])) ++j;
      const size_t len = j - i;
      Token t;
      t.offset = start;
      const char* canonical = Keywords().Match(sql.data() + i, len);
      if (canonical != nullptr) {
        t.type = TokenType::kKeyword;
        t.text.assign(canonical, len);
      } else {
        t.type = TokenType::kIdentifier;
        t.text.assign(sql, i, len);
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j < n && sql[j] == '.') {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      if (j < n && (sql[j] == 'e' || sql[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (sql[k] == '+' || sql[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(sql[k]))) {
          is_double = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
            ++j;
          }
        }
      }
      std::string text = sql.substr(i, j - i);
      Token t;
      t.offset = start;
      t.text = text;
      if (is_double) {
        t.type = TokenType::kDouble;
        t.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.type = TokenType::kInteger;
        errno = 0;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
        if (errno == ERANGE) {
          return Status::InvalidArgument(
              StrFormat("integer literal out of range at offset %zu", start));
        }
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      // Copy whole runs up to each quote instead of byte-at-a-time appends.
      while (j < n) {
        size_t quote = sql.find('\'', j);
        if (quote == std::string::npos) break;  // unterminated
        value.append(sql, j, quote - j);
        if (quote + 1 < n && sql[quote + 1] == '\'') {  // '' escape
          value += '\'';
          j = quote + 2;
          continue;
        }
        closed = true;
        j = quote + 1;
        break;
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrFormat("unterminated string literal at offset %zu", start));
      }
      Token t;
      t.type = TokenType::kString;
      t.text = std::move(value);
      t.offset = start;
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    // Multi-char symbols first.
    auto symbol = [&](const char* sym) {
      Token t;
      t.type = TokenType::kSymbol;
      t.text = sym;
      t.offset = start;
      out.push_back(std::move(t));
    };
    if (c == '<' && i + 1 < n && sql[i + 1] == '=') {
      symbol("<=");
      i += 2;
    } else if (c == '>' && i + 1 < n && sql[i + 1] == '=') {
      symbol(">=");
      i += 2;
    } else if (c == '<' && i + 1 < n && sql[i + 1] == '>') {
      symbol("<>");
      i += 2;
    } else if (c == '!' && i + 1 < n && sql[i + 1] == '=') {
      symbol("!=");
      i += 2;
    } else if (std::string("(),*=<>+-/.;").find(c) != std::string::npos) {
      char buf[2] = {c, 0};
      symbol(buf);
      ++i;
    } else {
      return Status::InvalidArgument(
          StrFormat("unexpected character '%c' at offset %zu", c, start));
    }
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

Result<std::string> FingerprintSql(const std::string& sql,
                                   std::vector<Value>* params) {
  std::string fp;
  // Every source byte maps to at most one fingerprint byte plus the token
  // separators; sql.size() + a small slack avoids regrowth.
  fp.reserve(sql.size() + 8);
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(sql[j])) ++j;
      const size_t len = j - i;
      const char* canonical = Keywords().Match(sql.data() + i, len);
      if (canonical != nullptr) {
        fp.append(canonical, len);
      } else {
        fp.append(sql, i, len);
      }
      fp += ' ';
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j < n && sql[j] == '.') {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      if (j < n && (sql[j] == 'e' || sql[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (sql[k] == '+' || sql[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(sql[k]))) {
          is_double = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
            ++j;
          }
        }
      }
      // strtod/strtoll stop at exactly the character the scan above stopped
      // at, so parsing in place from the source buffer matches Tokenize's
      // substr-then-parse byte for byte.
      if (is_double) {
        params->push_back(Value(std::strtod(sql.c_str() + i, nullptr)));
      } else {
        errno = 0;
        int64_t v = std::strtoll(sql.c_str() + i, nullptr, 10);
        if (errno == ERANGE) {
          return Status::InvalidArgument(
              StrFormat("integer literal out of range at offset %zu", start));
        }
        params->push_back(Value(v));
      }
      fp += "? ";
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        size_t quote = sql.find('\'', j);
        if (quote == std::string::npos) break;  // unterminated
        value.append(sql, j, quote - j);
        if (quote + 1 < n && sql[quote + 1] == '\'') {  // '' escape
          value += '\'';
          j = quote + 2;
          continue;
        }
        closed = true;
        j = quote + 1;
        break;
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrFormat("unterminated string literal at offset %zu", start));
      }
      params->push_back(Value(std::move(value)));
      fp += "? ";
      i = j;
      continue;
    }
    if (c == '<' && i + 1 < n && sql[i + 1] == '=') {
      fp += "<= ";
      i += 2;
    } else if (c == '>' && i + 1 < n && sql[i + 1] == '=') {
      fp += ">= ";
      i += 2;
    } else if (c == '<' && i + 1 < n && sql[i + 1] == '>') {
      fp += "<> ";
      i += 2;
    } else if (c == '!' && i + 1 < n && sql[i + 1] == '=') {
      fp += "!= ";
      i += 2;
    } else if (std::string_view("(),*=<>+-/.;").find(c) !=
               std::string_view::npos) {
      fp += c;
      fp += ' ';
      ++i;
    } else {
      return Status::InvalidArgument(
          StrFormat("unexpected character '%c' at offset %zu", c, start));
    }
  }
  return fp;
}

}  // namespace clouddb::db
