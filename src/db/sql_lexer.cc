#include "db/sql_lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

#include "common/str_util.h"

namespace clouddb::db {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "CREATE", "TABLE",  "INDEX",  "ON",     "INSERT", "INTO",   "VALUES",
      "SELECT", "FROM",   "WHERE",  "ORDER",  "BY",     "ASC",    "DESC",
      "LIMIT",  "UPDATE", "SET",    "DELETE", "AND",    "NOT",    "NULL",
      "PRIMARY", "KEY",   "INT",    "BIGINT", "DOUBLE", "TEXT",   "VARCHAR",
      "TIMESTAMP", "BEGIN", "COMMIT", "ROLLBACK", "COUNT", "TRUNCATE",
      "IS",     "DROP",   "OR",     "IN",     "BETWEEN",
      "MIN",    "MAX",    "SUM",    "AVG",
  };
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kKeyword && text == kw;
}

bool Token::IsSymbol(const char* sym) const {
  return type == TokenType::kSymbol && text == sym;
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(sql[j])) ++j;
      std::string word = sql.substr(i, j - i);
      std::string upper = ToUpper(word);
      Token t;
      t.offset = start;
      if (Keywords().count(upper) > 0) {
        t.type = TokenType::kKeyword;
        t.text = upper;
      } else {
        t.type = TokenType::kIdentifier;
        t.text = std::move(word);
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j < n && sql[j] == '.') {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      if (j < n && (sql[j] == 'e' || sql[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (sql[k] == '+' || sql[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(sql[k]))) {
          is_double = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
            ++j;
          }
        }
      }
      std::string text = sql.substr(i, j - i);
      Token t;
      t.offset = start;
      t.text = text;
      if (is_double) {
        t.type = TokenType::kDouble;
        t.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.type = TokenType::kInteger;
        errno = 0;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
        if (errno == ERANGE) {
          return Status::InvalidArgument(
              StrFormat("integer literal out of range at offset %zu", start));
        }
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // '' escape
            value += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        value += sql[j];
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrFormat("unterminated string literal at offset %zu", start));
      }
      Token t;
      t.type = TokenType::kString;
      t.text = std::move(value);
      t.offset = start;
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    // Multi-char symbols first.
    auto symbol = [&](const char* sym) {
      Token t;
      t.type = TokenType::kSymbol;
      t.text = sym;
      t.offset = start;
      out.push_back(std::move(t));
    };
    if (c == '<' && i + 1 < n && sql[i + 1] == '=') {
      symbol("<=");
      i += 2;
    } else if (c == '>' && i + 1 < n && sql[i + 1] == '=') {
      symbol(">=");
      i += 2;
    } else if (c == '<' && i + 1 < n && sql[i + 1] == '>') {
      symbol("<>");
      i += 2;
    } else if (c == '!' && i + 1 < n && sql[i + 1] == '=') {
      symbol("!=");
      i += 2;
    } else if (std::string("(),*=<>+-/.;").find(c) != std::string::npos) {
      char buf[2] = {c, 0};
      symbol(buf);
      ++i;
    } else {
      return Status::InvalidArgument(
          StrFormat("unexpected character '%c' at offset %zu", c, start));
    }
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace clouddb::db
