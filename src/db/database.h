#ifndef CLOUDDB_DB_DATABASE_H_
#define CLOUDDB_DB_DATABASE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "db/binlog.h"
#include "db/functions.h"
#include "db/sql_ast.h"
#include "db/statement_cache.h"
#include "db/table.h"
#include "db/transaction.h"
#include "db/value.h"
#include "db/vec_arena.h"
#include "db/vec_expr.h"

namespace clouddb::db {

/// Result of executing one statement.
struct ExecResult {
  std::vector<std::string> column_names;  // SELECT only
  std::vector<Row> rows;                  // SELECT only
  int64_t rows_affected = 0;              // writes: rows touched
  int64_t rows_examined = 0;              // rows visited while planning/filtering
  std::string plan;  // access path chosen: "pk_eq", "index_range(col)", ...
  /// Column whose index supplied the rows in ascending order (empty for
  /// table scans). Lets ORDER BY on that column skip sorting.
  std::string scan_ordered_by;
};

/// Engine configuration.
struct DatabaseOptions {
  /// Clock behind NOW_MICROS(). Replication nodes bind this to their
  /// instance's drifting local clock; defaults to a constant-0 source.
  std::function<int64_t()> now_micros;

  /// Whether committed write statements are appended to the binlog. Masters
  /// keep this on; slaves apply replicated events with logging off
  /// (MySQL's default: no log-slave-updates).
  bool enable_binlog = true;

  /// Whether Execute() goes through the statement cache (parse each distinct
  /// statement shape once; bind literals per call). Off = parse every time.
  /// Either way the results are identical — the cache is wall-clock-only.
  bool statement_cache = true;

  /// LRU capacity of the statement cache (distinct statement shapes).
  size_t statement_cache_capacity = StatementCache::kDefaultCapacity;

  /// Whether WHERE filtering and aggregation run batch-at-a-time over column
  /// chunks with compiled predicate bytecode. Off = row-at-a-time tree
  /// walking. Either way the results are byte-identical — predicates outside
  /// the compiler's coverage always fall back to the scalar path.
  bool vectorized_exec = true;

  /// Whether committed write statements additionally capture row-based
  /// writesets into their binlog events (row images for insert/delete/
  /// update). Off = statement-only events, the historical format. DDL and
  /// function-bearing statements are never covered regardless of this flag;
  /// they replicate as statement text (see db/writeset.h).
  bool row_based_repl = false;
};

/// Counters for the vectorized engine (benchmark and test introspection).
struct VecExecStats {
  int64_t chunks_filtered = 0;   // chunks run through VecFilterChunk
  int64_t rows_filtered = 0;     // rows those chunks contained
  int64_t fused_aggregates = 0;  // aggregate SELECTs via the vector kernels
  int64_t scalar_fallbacks = 0;  // eligible predicates that ran scalar
};

/// A single-node relational database: catalog, SQL execution, table-level
/// 2PL transactions with rollback, and a statement-based binlog.
///
/// Typical use:
///
///   Database database(options);
///   auto session = database.CreateSession();
///   auto result = database.Execute("SELECT * FROM t WHERE id = 7",
///                                  session.get());
///
/// `Execute(sql)` without a session runs the statement on an internal
/// autocommit session.
class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an independent session (connection context).
  std::unique_ptr<Session> CreateSession();

  /// Parses and executes one statement on `session` (nullptr = the internal
  /// autocommit session). On statement failure inside an explicit
  /// transaction the whole transaction is rolled back (no savepoints).
  Result<ExecResult> Execute(const std::string& sql, Session* session = nullptr);

  /// Executes an already-parsed statement. `sql_text` is the statement text
  /// recorded in the binlog if this is a write.
  Result<ExecResult> ExecuteParsed(const Statement& stmt,
                                   const std::string& sql_text,
                                   Session* session);

  /// Fingerprints `sql` against the statement cache, parsing (and caching)
  /// the template on a miss. Callers that need the AST before executing —
  /// cost estimation, routing — use this so the later Execute() of the same
  /// text is a cache hit instead of a second parse. Fails (NotSupported) for
  /// shapes the cache bypasses; see StatementCache::Prepare.
  Result<PreparedCall> Prepare(const std::string& sql);

  /// Executes a prepared call (template + bound literals). `sql_text` is the
  /// original statement text, recorded in the binlog if this is a write.
  Result<ExecResult> ExecutePrepared(const PreparedCall& call,
                                     const std::string& sql_text,
                                     Session* session);

  // --- Introspection -------------------------------------------------------
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  Binlog& binlog() { return binlog_; }
  const Binlog& binlog() const { return binlog_; }
  FunctionRegistry& functions() { return functions_; }
  LockManager& lock_manager() { return lock_manager_; }
  const DatabaseOptions& options() const { return options_; }
  StatementCache& statement_cache() { return statement_cache_; }
  const StatementCache& statement_cache() const { return statement_cache_; }

  /// Toggles the parse-once path at runtime (the on/off equivalence tests
  /// and benchmarks flip this). Disabling does not drop cached entries.
  void set_statement_cache_enabled(bool enabled) {
    options_.statement_cache = enabled;
  }
  bool statement_cache_enabled() const { return options_.statement_cache; }

  /// Toggles the vectorized execution engine at runtime (ablation studies
  /// and the on/off equivalence tests flip this; see
  /// DatabaseOptions::vectorized_exec).
  void set_vectorized_exec_enabled(bool enabled) {
    options_.vectorized_exec = enabled;
  }
  bool vectorized_exec_enabled() const { return options_.vectorized_exec; }

  /// Toggles row-based writeset capture at runtime (the replication-mode
  /// ablation flips this on the master; slaves detect the mode per event).
  void set_row_based_repl_enabled(bool enabled) {
    options_.row_based_repl = enabled;
  }
  bool row_based_repl_enabled() const { return options_.row_based_repl; }

  const VecExecStats& vec_stats() const { return vec_stats_; }
  void ResetVecStats() { vec_stats_ = VecExecStats{}; }

  /// Replaces the NOW_MICROS time source (also updates options()).
  void SetTimeSource(std::function<int64_t()> now_micros);

  /// Temporarily disables binlog appends (used when bulk pre-loading every
  /// replica with identical data; the load must not replicate again).
  void set_binlog_suppressed(bool suppressed) {
    binlog_suppressed_ = suppressed;
  }
  bool binlog_suppressed() const { return binlog_suppressed_; }

  /// Turns binary logging on or off permanently (a promoted slave enables
  /// logging when it becomes the master).
  void set_binlog_enabled(bool enabled) { options_.enable_binlog = enabled; }

  /// True when every table's indexes are internally consistent (test hook).
  bool ValidateAllIndexes(std::string* error) const;

  /// Deep content equality of two databases (same tables, same row
  /// multisets) — the master/slave convergence check. Tables named in
  /// `ignore_tables` are excluded: statement-based replication re-evaluates
  /// non-deterministic functions per replica, so tables like the heartbeat
  /// table (whose NOW_MICROS() column *intentionally* differs per replica)
  /// must be skipped.
  static bool ContentsEqual(const Database& a, const Database& b,
                            const std::vector<std::string>& ignore_tables = {});

 private:
  friend class Executor;

  /// Shared execution path: `params` is null for fully-literal ASTs and the
  /// bound literal vector for cached templates. `prepared` (nullable) is the
  /// cache entry backing this execution; it carries the WHERE predicate
  /// pre-compiled to vectorized bytecode.
  Result<ExecResult> ExecuteStatement(const Statement& stmt,
                                      const std::vector<Value>* params,
                                      const std::string& sql_text,
                                      Session* session,
                                      const PreparedStatement* prepared);

  /// Commits `session`: appends pending write statements to the binlog as a
  /// single event, releases locks, clears transaction state.
  void CommitSession(Session* session);
  /// Rolls back `session`: applies the undo log in reverse, releases locks.
  void RollbackSession(Session* session);

  DatabaseOptions options_;
  FunctionRegistry functions_;
  Binlog binlog_;
  LockManager lock_manager_;
  StatementCache statement_cache_;
  std::map<std::string, std::unique_ptr<Table>> tables_;  // keys lower-cased
  bool binlog_suppressed_ = false;
  int64_t next_session_id_ = 1;
  std::unique_ptr<Session> autocommit_session_;
  // Vectorized-execution scratch state, reused across statements so steady
  // workloads allocate nothing per chunk. Single-threaded like the rest of
  // the engine (the simulation interleaves whole statements).
  VecArena vec_arena_;
  VecBinding vec_binding_;
  VecExecStats vec_stats_;
};

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_DATABASE_H_
