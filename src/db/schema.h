#ifndef CLOUDDB_DB_SCHEMA_H_
#define CLOUDDB_DB_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "db/value.h"

namespace clouddb::db {

/// Definition of one column.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt64;
  bool not_null = false;
  bool primary_key = false;  // at most one column per table
};

/// A table's column layout. Column order is the row layout.
class Schema {
 public:
  Schema() = default;

  /// Validates the definitions (unique names, at most one primary key;
  /// a primary key is implicitly NOT NULL).
  static Result<Schema> Create(std::vector<ColumnDef> columns);

  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of column `name` (case-insensitive), or error.
  Result<size_t> ColumnIndex(const std::string& name) const;
  bool HasColumn(const std::string& name) const;

  /// Index of the primary-key column, if declared.
  std::optional<size_t> primary_key_index() const { return pk_index_; }

  /// Checks a row against the schema: arity, types (int is accepted where
  /// double is declared and silently widened), NOT NULL.
  Status ValidateRow(const Row& row) const;

  /// Coerces in place (int -> double widening for double columns).
  Status CoerceRow(Row* row) const;

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  std::optional<size_t> pk_index_;
};

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_SCHEMA_H_
