#ifndef CLOUDDB_DB_STATEMENT_CACHE_H_
#define CLOUDDB_DB_STATEMENT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "db/sql_ast.h"
#include "db/sql_lexer.h"
#include "db/value.h"
#include "db/vec_expr.h"

namespace clouddb::db {

/// Reference fingerprint construction: the normalized fingerprint of a token
/// stream plus its literal values in token order. Every token is emitted
/// with a single trailing space, so the fingerprint is whitespace-folded and
/// unambiguous (no token contains a space). Literals of any type collapse to
/// `?` — the literal's type travels with the bound value, not the shape.
/// The cache's hot path uses the fused single-pass FingerprintSql scan
/// (sql_lexer.h); tests assert the two constructions agree.
std::string FingerprintTokens(const std::vector<Token>& tokens,
                              std::vector<Value>* params);

/// Counters exposed for benchmarks, the Cloudstone report, and tests.
struct StatementCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;          // fingerprint absent; template parsed+inserted
  int64_t evictions = 0;       // LRU capacity evictions
  int64_t invalidations = 0;   // entries dropped by Invalidate() (DDL)
  int64_t bypasses = 0;        // statements not eligible for caching
  int64_t programs_compiled = 0;     // WHERE predicates lowered to bytecode
  int64_t programs_invalidated = 0;  // compiled programs dropped by DDL
};

/// A parsed statement template: the AST with every literal replaced by an
/// Expr::kParameter placeholder. Shared (not cloned) across executions;
/// immutable after insertion. Held by shared_ptr so an execution queued
/// behind the CPU scheduler survives eviction or DDL invalidation of its
/// cache entry.
struct PreparedStatement {
  std::string fingerprint;
  Statement statement;
  size_t param_count = 0;
  /// The WHERE clause lowered to vectorized bytecode at insert time, when
  /// the predicate falls inside CompilePredicate's coverage. The program
  /// references the statement's own Expr tree, so it lives and dies with
  /// this struct — Invalidate() dropping the entry drops the program. It is
  /// schema-independent and re-bound on every execution (see VecBinding),
  /// which is what keeps a holder that outlives DDL invalidation safe.
  VecProgram where_program;
  bool has_where_program = false;
};

/// One executable call: a template plus the literal values extracted from a
/// concrete SQL text, bound positionally to the template's parameters.
struct PreparedCall {
  std::shared_ptr<const PreparedStatement> prepared;
  std::vector<Value> params;
};

/// Deterministic LRU cache of parsed statement templates keyed on a
/// normalized fingerprint (literals masked to `?`, keyword case and
/// whitespace folded, identifier case preserved — aggregate output column
/// names echo the query's spelling, so folding identifiers could change
/// visible results).
///
/// Recency is tracked purely by list position maintained on each access —
/// no wall clock, no timestamps — so cache behavior is a deterministic
/// function of the statement sequence and replays identically across runs
/// and replicas (a hard requirement: the simulation's results must be
/// independent of host timing).
///
/// Only DML (SELECT/INSERT/UPDATE/DELETE) is cached. DDL and transaction
/// control bypass the cache, and executing DDL must call Invalidate().
class StatementCache {
 public:
  explicit StatementCache(size_t capacity = kDefaultCapacity);

  StatementCache(const StatementCache&) = delete;
  StatementCache& operator=(const StatementCache&) = delete;

  /// Tokenizes `sql`, computes its fingerprint, and returns the cached
  /// template plus this text's literal values. On a miss the literal-masked
  /// token stream is parsed and inserted first.
  ///
  /// Failure modes callers must handle by falling back to plain ParseSql
  /// (which reproduces byte-identical errors and behavior):
  ///  - NotSupported: statement shape is not cacheable (DDL, BEGIN/COMMIT/
  ///    ROLLBACK, empty input) or the template failed to parse.
  ///  - any tokenizer error, returned verbatim.
  Result<PreparedCall> Prepare(const std::string& sql);

  /// Drops every entry (DDL changed the catalog under the cached plans).
  void Invalidate();

  size_t size() const { return lru_.size(); }
  size_t capacity() const { return capacity_; }
  const StatementCacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = StatementCacheStats{}; }

  /// Fingerprints in most-recently-used order (test hook for LRU behavior).
  std::vector<std::string> FingerprintsByRecency() const;

  static constexpr size_t kDefaultCapacity = 256;

 private:
  void RememberLast(const std::string& sql, const std::vector<Value>& params);

  struct Entry {
    std::string fingerprint;
    std::shared_ptr<const PreparedStatement> prepared;
  };

  size_t capacity_;
  // MRU at the front; index_ points into the list for O(1) touch.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  StatementCacheStats stats_;
  // Identical-text memo: when `sql` is byte-equal to the previous successful
  // Prepare, the fingerprint scan is skipped entirely and the remembered
  // entry and literal values are reused. Counts as a hit and touches the LRU
  // exactly like the scan path, so observable cache state is unchanged.
  bool has_last_ = false;
  std::string last_sql_;
  std::vector<Value> last_params_;
  std::list<Entry>::iterator last_it_;
};

}  // namespace clouddb::db

#endif  // CLOUDDB_DB_STATEMENT_CACHE_H_
