#include "harness/sweep.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>

#include "common/str_util.h"
#include "common/result.h"
#include "common/status.h"
#include "common/table_writer.h"
#include "harness/experiment.h"

namespace clouddb::harness {

const SweepCell* SweepResult::Find(int slaves, int users) const {
  for (const SweepCell& cell : cells_) {
    if (cell.slaves == slaves && cell.users == users) return &cell;
  }
  return nullptr;
}

double SweepResult::Throughput(int slaves, int users) const {
  const SweepCell* cell = Find(slaves, users);
  return cell == nullptr ? 0.0 : cell->result.benchmark.throughput_ops;
}

double SweepResult::RelativeDelay(int slaves, int users) const {
  const SweepCell* cell = Find(slaves, users);
  return cell == nullptr ? 0.0 : cell->result.mean_relative_delay_ms;
}

int SweepResult::SaturationUsers(int slaves,
                                 const std::vector<int>& user_counts) const {
  // Find the workload with the maximum observed throughput; the saturation
  // point is the next workload step (0 if the maximum sits at the end).
  double best = -1.0;
  size_t best_i = 0;
  for (size_t i = 0; i < user_counts.size(); ++i) {
    double t = Throughput(slaves, user_counts[i]);
    if (t > best) {
      best = t;
      best_i = i;
    }
  }
  if (best_i + 1 >= user_counts.size()) return 0;
  return user_counts[best_i + 1];
}

TableWriter SweepResult::ThroughputTable(
    const std::vector<int>& slave_counts,
    const std::vector<int>& user_counts) const {
  std::vector<std::string> header = {"users"};
  for (int s : slave_counts) {
    header.push_back(StrFormat("%d slave%s", s, s == 1 ? "" : "s"));
  }
  TableWriter table(std::move(header));
  for (int u : user_counts) {
    std::vector<std::string> row = {StrFormat("%d", u)};
    for (int s : slave_counts) {
      row.push_back(StrFormat("%.1f", Throughput(s, u)));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

TableWriter SweepResult::DelayTable(const std::vector<int>& slave_counts,
                                    const std::vector<int>& user_counts) const {
  std::vector<std::string> header = {"users"};
  for (int s : slave_counts) {
    header.push_back(StrFormat("%d slave%s", s, s == 1 ? "" : "s"));
  }
  TableWriter table(std::move(header));
  for (int u : user_counts) {
    std::vector<std::string> row = {StrFormat("%d", u)};
    for (int s : slave_counts) {
      row.push_back(StrFormat("%.1f", RelativeDelay(s, u)));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

namespace {

/// One grid cell's fully derived run configuration. Planning every cell up
/// front (in grid order) makes each seed a pure function of the grid
/// coordinates — never of worker scheduling — which is what lets the
/// parallel runner reproduce the serial runner's output byte for byte.
struct PlannedCell {
  int slaves = 0;
  int users = 0;
  ExperimentConfig run;
};

std::vector<PlannedCell> PlanCells(const SweepConfig& config) {
  std::vector<PlannedCell> cells;
  cells.reserve(config.slave_counts.size() * config.user_counts.size());
  for (int slaves : config.slave_counts) {
    for (int users : config.user_counts) {
      ExperimentConfig run = config.base;
      run.num_slaves = slaves;
      run.num_users = users;
      // Decorrelate the workload deterministically, but pin the cloud
      // randomness so the whole sweep runs on one fixed set of instances
      // (the paper's deployment is constant within a figure).
      run.seed = config.base.seed + config.seed_salt +
                 static_cast<uint64_t>(slaves) * 1000003ull +
                 static_cast<uint64_t>(users) * 7919ull;
      if (!run.placement_seed.has_value()) {
        run.placement_seed = config.base.seed * 131 + config.seed_salt;
      }
      cells.push_back(PlannedCell{slaves, users, std::move(run)});
    }
  }
  return cells;
}

}  // namespace

Result<SweepResult> RunSweep(
    const SweepConfig& config,
    const std::function<void(const SweepCell&)>& progress) {
  const std::vector<PlannedCell> cells = PlanCells(config);
  const size_t n = cells.size();
  SweepResult result;

  int jobs = config.jobs;
  if (jobs <= 0) jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 1) jobs = 1;
  if (jobs > static_cast<int>(n)) jobs = static_cast<int>(n);

  if (jobs <= 1) {
    for (const PlannedCell& cell : cells) {
      auto outcome = RunExperiment(cell.run);
      if (!outcome.ok()) return outcome.status();
      SweepCell done{cell.slaves, cell.users, std::move(outcome).value()};
      if (progress) progress(done);
      result.Add(std::move(done));
    }
    return result;
  }

  // Parallel runner: each cell is an independent single-threaded Simulation,
  // so workers just claim cells from a shared cursor. The main thread
  // consumes outcomes strictly in grid order — progress callbacks, cell
  // order, and every derived table are byte-identical to jobs == 1.
  std::vector<std::optional<Result<ExperimentResult>>> outcomes(n);
  std::atomic<size_t> cursor{0};
  std::mutex mu;
  std::condition_variable cell_ready;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        size_t i = cursor.fetch_add(1);
        if (i >= n) return;
        Result<ExperimentResult> outcome = RunExperiment(cells[i].run);
        {
          std::lock_guard<std::mutex> lock(mu);
          outcomes[i] = std::move(outcome);
        }
        cell_ready.notify_all();
      }
    });
  }

  Status failed = Status::Ok();
  for (size_t i = 0; i < n; ++i) {
    std::unique_lock<std::mutex> lock(mu);
    cell_ready.wait(lock, [&] { return outcomes[i].has_value(); });
    Result<ExperimentResult>& outcome = *outcomes[i];
    if (!outcome.ok()) {
      // Match the serial runner: the first grid-order failure wins and no
      // later cell is surfaced (workers still drain so join() returns).
      failed = outcome.status();
      break;
    }
    SweepCell done{cells[i].slaves, cells[i].users,
                   std::move(outcome).value()};
    lock.unlock();
    if (progress) progress(done);
    result.Add(std::move(done));
  }
  for (std::thread& worker : workers) worker.join();
  if (!failed.ok()) return failed;
  return result;
}

}  // namespace clouddb::harness
