#include "harness/sweep.h"

#include "common/str_util.h"

namespace clouddb::harness {

const SweepCell* SweepResult::Find(int slaves, int users) const {
  for (const SweepCell& cell : cells_) {
    if (cell.slaves == slaves && cell.users == users) return &cell;
  }
  return nullptr;
}

double SweepResult::Throughput(int slaves, int users) const {
  const SweepCell* cell = Find(slaves, users);
  return cell == nullptr ? 0.0 : cell->result.benchmark.throughput_ops;
}

double SweepResult::RelativeDelay(int slaves, int users) const {
  const SweepCell* cell = Find(slaves, users);
  return cell == nullptr ? 0.0 : cell->result.mean_relative_delay_ms;
}

int SweepResult::SaturationUsers(int slaves,
                                 const std::vector<int>& user_counts) const {
  // Find the workload with the maximum observed throughput; the saturation
  // point is the next workload step (0 if the maximum sits at the end).
  double best = -1.0;
  size_t best_i = 0;
  for (size_t i = 0; i < user_counts.size(); ++i) {
    double t = Throughput(slaves, user_counts[i]);
    if (t > best) {
      best = t;
      best_i = i;
    }
  }
  if (best_i + 1 >= user_counts.size()) return 0;
  return user_counts[best_i + 1];
}

TableWriter SweepResult::ThroughputTable(
    const std::vector<int>& slave_counts,
    const std::vector<int>& user_counts) const {
  std::vector<std::string> header = {"users"};
  for (int s : slave_counts) {
    header.push_back(StrFormat("%d slave%s", s, s == 1 ? "" : "s"));
  }
  TableWriter table(std::move(header));
  for (int u : user_counts) {
    std::vector<std::string> row = {StrFormat("%d", u)};
    for (int s : slave_counts) {
      row.push_back(StrFormat("%.1f", Throughput(s, u)));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

TableWriter SweepResult::DelayTable(const std::vector<int>& slave_counts,
                                    const std::vector<int>& user_counts) const {
  std::vector<std::string> header = {"users"};
  for (int s : slave_counts) {
    header.push_back(StrFormat("%d slave%s", s, s == 1 ? "" : "s"));
  }
  TableWriter table(std::move(header));
  for (int u : user_counts) {
    std::vector<std::string> row = {StrFormat("%d", u)};
    for (int s : slave_counts) {
      row.push_back(StrFormat("%.1f", RelativeDelay(s, u)));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

Result<SweepResult> RunSweep(
    const SweepConfig& config,
    const std::function<void(const SweepCell&)>& progress) {
  SweepResult result;
  for (int slaves : config.slave_counts) {
    for (int users : config.user_counts) {
      ExperimentConfig run = config.base;
      run.num_slaves = slaves;
      run.num_users = users;
      // Decorrelate the workload deterministically, but pin the cloud
      // randomness so the whole sweep runs on one fixed set of instances
      // (the paper's deployment is constant within a figure).
      run.seed = config.base.seed + config.seed_salt +
                 static_cast<uint64_t>(slaves) * 1000003ull +
                 static_cast<uint64_t>(users) * 7919ull;
      if (!run.placement_seed.has_value()) {
        run.placement_seed = config.base.seed * 131 + config.seed_salt;
      }
      auto outcome = RunExperiment(run);
      if (!outcome.ok()) return outcome.status();
      SweepCell cell{slaves, users, std::move(outcome).value()};
      if (progress) progress(cell);
      result.Add(std::move(cell));
    }
  }
  return result;
}

}  // namespace clouddb::harness
