#include "harness/control_experiment.h"

#include <algorithm>
#include <memory>

#include "client/rw_split_proxy.h"
#include "cloud/cloud_provider.h"
#include "cloud/instance.h"
#include "cloudstone/benchmark_driver.h"
#include "cloudstone/operations.h"
#include "cloudstone/schema.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/str_util.h"
#include "control/elasticity_controller.h"
#include "control/freshness_tracker.h"
#include "metrics/metric_registry.h"
#include "repl/heartbeat.h"
#include "repl/replication_cluster.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"
#include "common/time_types.h"

namespace clouddb::harness {

std::string ControlExperimentResult::TimelineString() const {
  std::string out;
  for (const control::ScalingEvent& event : scaling_events) {
    out += StrFormat("  %-10s t=%-12s active=%d  (%s)\n",
                     control::ScalingActionToString(event.action),
                     FormatDuration(event.at).c_str(), event.num_active,
                     event.reason.c_str());
  }
  if (out.empty()) out = "  (no scaling events)\n";
  return out;
}

Result<ControlExperimentResult> RunControlExperiment(
    const ControlExperimentConfig& config) {
  Rng seeder(config.seed);
  sim::Simulation sim;
  uint64_t derived_placement_seed = seeder.NextU64();
  cloud::CloudProvider provider(
      &sim, config.cloud,
      config.placement_seed.value_or(derived_placement_seed));

  repl::ClusterConfig cluster_config;
  cluster_config.num_slaves = config.initial_slaves;
  cluster_config.cost_model =
      cloudstone::MakeWorkloadCostModel(config.costs, config.apply_factor);
  repl::ReplicationCluster cluster(&provider, cluster_config);
  cluster.SetStatementCacheEnabled(config.statement_cache);

  cloud::Instance* bench_instance =
      provider.Launch("cloudstone", cloud::InstanceType::kLarge,
                      cluster_config.master_placement);

  cloudstone::WorkloadState state;
  uint64_t load_seed = seeder.NextU64();
  Status load_status = cloudstone::LoadInitialData(
      [&](const std::string& sql) {
        return cluster.ExecuteEverywhereDirect(sql);
      },
      config.data_scale, load_seed, &state);
  if (!load_status.ok()) return load_status;

  repl::HeartbeatPlugin heartbeat(&sim, cluster.master(), config.heartbeat);
  CLOUDDB_RETURN_IF_ERROR(heartbeat.CreateTable());
  heartbeat.Start();

  client::ProxyOptions proxy_options;
  proxy_options.policy = client::BalancePolicy::kFreshnessAware;
  proxy_options.route_cache = config.statement_cache;
  proxy_options.pool.max_active =
      std::max(8, config.base_users + config.surge_users);
  std::vector<repl::SlaveNode*> slaves;
  for (int i = 0; i < cluster.num_slaves(); ++i) {
    slaves.push_back(cluster.slave(i));
  }
  client::ReadWriteSplitProxy proxy(&sim, &provider.network(),
                                    bench_instance->node_id(),
                                    cluster.master(), slaves, proxy_options);

  // The control plane: tracker feeds the proxy's SLA router and the
  // controller's lag signal.
  control::FreshnessTracker tracker(&sim, &cluster, config.tracker);
  proxy.SetStalenessProbe(tracker.Probe());
  tracker.Start();
  control::ElasticityController controller(&sim, &cluster, &proxy,
                                           tracker.Probe(),
                                           config.controller);
  if (config.enable_controller) controller.Start();

  // Worst-staleness watermark, sampled at the tracker's own cadence.
  double peak_staleness_ms = 0.0;
  sim::PeriodicTimer staleness_watermark;
  staleness_watermark.Start(&sim, config.tracker.poll_period, [&] {
    for (int i = 0; i < cluster.num_slaves(); ++i) {
      peak_staleness_ms = std::max(peak_staleness_ms, tracker.StalenessMs(i));
    }
  });

  // Workload: base users for the whole measured window, surge users for the
  // load step in the middle of it. Every read carries the staleness bound.
  cloudstone::OperationGenerator generator(
      config.mix, config.costs, &state,
      [bench_instance] { return bench_instance->LocalNowMicros(); });
  cloudstone::MetricsCollector collector;
  client::ReadOptions read_options;
  read_options.max_staleness = config.staleness_bound;

  SimTime measure_start = sim.Now() + config.warmup;
  SimTime measure_end = measure_start + config.measure;
  SimTime surge_start = measure_start + config.surge_start;
  SimTime surge_end = surge_start + config.surge_duration;

  std::vector<std::unique_ptr<cloudstone::UserEmulator>> users;
  for (int u = 0; u < config.base_users + config.surge_users; ++u) {
    users.push_back(std::make_unique<cloudstone::UserEmulator>(
        &sim, &proxy, &generator, &collector, Rng(seeder.NextU64()),
        config.think_time_mean));
    users.back()->set_read_options(read_options);
    bool surge = u >= config.base_users;
    users.back()->Activate(surge ? surge_start : measure_start,
                           surge ? surge_end : measure_end);
  }

  sim.RunUntil(measure_end);
  heartbeat.Stop();
  tracker.Stop();
  controller.Stop();
  staleness_watermark.Stop();
  sim.Run();  // drain in-flight operations and relay logs

  ControlExperimentResult result;
  const metrics::MetricRegistry& pm = proxy.metrics();
  result.bounded_reads = pm.FindCounter("proxy.reads.bounded")->value();
  result.bounded_to_slave =
      pm.FindCounter("proxy.reads.bounded_to_slave")->value();
  result.master_fallbacks =
      pm.FindCounter("proxy.reads.master_fallback")->value();
  result.read_retries = pm.FindCounter("proxy.reads.retries")->value();
  result.sla_checked = pm.FindCounter("proxy.sla.checked")->value();
  result.sla_violations = pm.FindCounter("proxy.sla.violations")->value();
  if (result.bounded_reads > 0) {
    result.achieved_freshness_pct =
        100.0 * static_cast<double>(result.bounded_reads -
                                    result.sla_violations) /
        static_cast<double>(result.bounded_reads);
    result.master_offload_pct =
        100.0 * static_cast<double>(result.bounded_to_slave) /
        static_cast<double>(result.bounded_reads);
  }

  result.scale_outs =
      controller.metrics().FindCounter("control.scale_out.total")->value();
  result.scale_ins =
      controller.metrics().FindCounter("control.scale_in.total")->value();
  result.final_active_slaves = cluster.num_active_slaves();
  result.scaling_events = controller.events();
  int active = config.initial_slaves;
  result.peak_active_slaves = active;
  for (const control::ScalingEvent& event : result.scaling_events) {
    active = event.num_active;
    result.peak_active_slaves = std::max(result.peak_active_slaves, active);
  }
  result.peak_staleness_ms = peak_staleness_ms;

  result.completed_ops =
      collector.CountInWindow(measure_start, measure_end);
  result.failed_ops = collector.failures();
  result.throughput_ops = static_cast<double>(result.completed_ops) /
                          (static_cast<double>(config.measure) / 1e6);
  Sample responses = collector.ResponseTimesMs(measure_start, measure_end);
  result.mean_response_ms = responses.Mean();

  // The cluster-wide spine: one registry per node/tier, merged. Same-name
  // metrics across slaves aggregate (counters add, gauges sum, EWMAs
  // count-weight); the table is deterministic by construction.
  metrics::MetricRegistry total("cluster");
  total.MergeFrom(cluster.master()->metrics());
  for (int i = 0; i < cluster.num_slaves(); ++i) {
    total.MergeFrom(cluster.slave(i)->metrics());
  }
  total.MergeFrom(proxy.metrics());
  total.MergeFrom(tracker.metrics());
  total.MergeFrom(controller.metrics());
  result.metrics_table = total.ToString();
  return result;
}

}  // namespace clouddb::harness
