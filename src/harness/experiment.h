#ifndef CLOUDDB_HARNESS_EXPERIMENT_H_
#define CLOUDDB_HARNESS_EXPERIMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "client/rw_split_proxy.h"
#include "cloud/cloud_provider.h"
#include "cloud/ntp.h"
#include "cloudstone/benchmark_driver.h"
#include "cloudstone/operations.h"
#include "common/result.h"
#include "repl/heartbeat.h"
#include "repl/replication_cluster.h"
#include "cloud/placement.h"
#include "common/time_types.h"

namespace clouddb::harness {

/// The paper's three geographic configurations for the slaves (§III-A):
/// same zone / different zone (same region) / different region.
enum class LocationConfig {
  kSameZone,
  kDifferentZone,
  kDifferentRegion,
};

const char* LocationConfigToString(LocationConfig location);
cloud::Placement SlavePlacementFor(LocationConfig location);

/// Everything that defines one experiment run.
struct ExperimentConfig {
  LocationConfig location = LocationConfig::kSameZone;
  cloudstone::WorkloadMix mix = cloudstone::WorkloadMix::FiftyFifty();
  cloudstone::OperationCosts costs;
  /// The paper's "initial data size" (300 for 50/50 runs, 600 for 80/20).
  int64_t data_scale = 300;
  int num_slaves = 1;
  int num_users = 50;
  cloudstone::BenchmarkOptions benchmark;
  repl::HeartbeatOptions heartbeat;
  /// Idle heartbeat window before ramp-up: baseline for the *relative*
  /// replication delay ("the average of delays without running workloads").
  SimDuration idle_window = Minutes(2);
  cloud::CloudOptions cloud;
  /// NTP on every instance, synchronized every second (§III-A).
  cloud::NtpOptions ntp;
  bool enable_ntp = true;
  bool synchronous_replication = false;
  /// Parse-once statement caches on every replica and in the proxy's router.
  /// Off reverts to parse-per-statement; experiment *results* must be
  /// bit-identical either way (the cache only removes redundant work).
  bool statement_cache = true;
  /// Vectorized batch execution on every replica (chunked scans, compiled
  /// predicate bytecode, fused aggregation). Same ablation contract as the
  /// statement cache: off reverts to row-at-a-time tree walking and results
  /// must be bit-identical either way.
  bool vectorized_exec = true;
  /// Row-based writeset replication: the master ships row images next to
  /// statement events and slaves apply covered statements without the
  /// parser. Same ablation contract: replica state is bit-identical either
  /// way (DDL and function-bearing statements always fall back).
  bool row_based_repl = false;
  /// Binlog group-shipping batch size; <= 1 keeps the legacy
  /// one-message-per-event push (byte-identical to the seed figures).
  int binlog_batch_size = 1;
  client::BalancePolicy policy = client::BalancePolicy::kRoundRobin;
  double apply_factor = 0.5;
  uint64_t seed = 42;
  /// Seed for the *cloud* randomness (instance speed lottery, clock offsets,
  /// network jitter). Defaults to a value derived from `seed`. Sweeps pin
  /// this so one figure's curves share a fixed set of launched instances —
  /// the paper reuses its deployment across the workload steps of a figure.
  std::optional<uint64_t> placement_seed;
};

/// Measurements of one run.
struct ExperimentResult {
  cloudstone::BenchmarkReport benchmark;
  /// Average relative replication delay per slave, ms (paper Figs. 5/6).
  std::vector<double> relative_delay_ms;
  /// Trimmed-mean raw delays per slave for both windows (diagnostics).
  std::vector<double> idle_delay_ms;
  std::vector<double> loaded_delay_ms;
  /// Mean of relative_delay_ms across slaves.
  double mean_relative_delay_ms = 0.0;
  /// Post-drain invariants.
  bool fully_replicated = false;
  bool converged = false;
  int64_t heartbeats_issued = 0;
  int64_t binlog_events = 0;
};

/// Builds the full three-layer deployment of the paper's Fig. 1 — benchmark
/// instance (L1), master (L2), slaves (L3) — runs one 35-minute Cloudstone
/// benchmark with the heartbeat probe, drains, and reports.
Result<ExperimentResult> RunExperiment(const ExperimentConfig& config);

}  // namespace clouddb::harness

#endif  // CLOUDDB_HARNESS_EXPERIMENT_H_
