#ifndef CLOUDDB_HARNESS_SWEEP_CONTROL_H_
#define CLOUDDB_HARNESS_SWEEP_CONTROL_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/table_writer.h"
#include "common/time_types.h"
#include "harness/control_experiment.h"

namespace clouddb::harness {

/// Grid of control-plane runs: SLA bound x offered load. Each cell is one
/// RunControlExperiment with the load step and the controller enabled.
struct ControlSweepConfig {
  ControlExperimentConfig base;
  /// Staleness bounds (negative = unbounded is allowed as a control cell).
  std::vector<SimDuration> staleness_bounds;
  /// Offered load per cell: base users; surge users scale with the base.
  std::vector<int> user_counts;
  double surge_factor = 3.0;
  /// Offset folded into each cell's seed.
  uint64_t seed_salt = 0;
  /// Worker threads; identical contract to SweepConfig::jobs — results are
  /// consumed strictly in grid order, so output is byte-identical for every
  /// value.
  int jobs = 1;
};

struct ControlSweepCell {
  SimDuration bound = 0;
  int users = 0;
  ControlExperimentResult result;
};

class ControlSweepResult {
 public:
  void Add(ControlSweepCell cell) { cells_.push_back(std::move(cell)); }
  const std::vector<ControlSweepCell>& cells() const { return cells_; }
  const ControlSweepCell* Find(SimDuration bound, int users) const;

  double AchievedFreshness(SimDuration bound, int users) const;
  double MasterOffload(SimDuration bound, int users) const;
  int PeakReplicas(SimDuration bound, int users) const;

  /// Figure tables: one row per SLA bound, one column per offered load.
  TableWriter FreshnessTable(const std::vector<SimDuration>& bounds,
                             const std::vector<int>& user_counts) const;
  TableWriter OffloadTable(const std::vector<SimDuration>& bounds,
                           const std::vector<int>& user_counts) const;
  TableWriter ReplicaTable(const std::vector<SimDuration>& bounds,
                           const std::vector<int>& user_counts) const;

 private:
  std::vector<ControlSweepCell> cells_;
};

/// Runs every (bound, users) combination, on `config.jobs` worker threads
/// when > 1; `progress` fires on the calling thread in grid order.
Result<ControlSweepResult> RunControlSweep(
    const ControlSweepConfig& config,
    const std::function<void(const ControlSweepCell&)>& progress = nullptr);

}  // namespace clouddb::harness

#endif  // CLOUDDB_HARNESS_SWEEP_CONTROL_H_
