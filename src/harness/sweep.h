#ifndef CLOUDDB_HARNESS_SWEEP_H_
#define CLOUDDB_HARNESS_SWEEP_H_

#include <functional>
#include <string>
#include <vector>

#include "common/table_writer.h"
#include "harness/experiment.h"
#include "common/result.h"

namespace clouddb::harness {

/// A grid of runs: "multiple runs are conducted by compounding different
/// workloads and numbers of slaves" (§III-B).
struct SweepConfig {
  ExperimentConfig base;
  std::vector<int> slave_counts;
  std::vector<int> user_counts;
  /// Offset folded into each run's seed so repeated sweeps can differ.
  uint64_t seed_salt = 0;
  /// Worker threads running independent grid cells concurrently. 1 runs the
  /// grid serially on the calling thread; 0 means "one per hardware core".
  /// Every cell's seed is derived up front from its grid coordinates and
  /// results are delivered strictly in grid order, so the output (cells,
  /// progress callbacks, derived tables) is byte-identical for every value.
  int jobs = 1;
};

struct SweepCell {
  int slaves = 0;
  int users = 0;
  ExperimentResult result;
};

/// All cells of a sweep plus the paper's derived readouts.
class SweepResult {
 public:
  void Add(SweepCell cell) { cells_.push_back(std::move(cell)); }
  const std::vector<SweepCell>& cells() const { return cells_; }
  const SweepCell* Find(int slaves, int users) const;

  /// End-to-end throughput (ops/s), NaN-safe 0 when missing.
  double Throughput(int slaves, int users) const;
  /// Mean average-relative-replication-delay across slaves, ms.
  double RelativeDelay(int slaves, int users) const;

  /// The paper's saturation point for a slave count: "the point right after
  /// the observed maximum throughput". Returns 0 if the curve is still
  /// rising at the largest measured workload.
  int SaturationUsers(int slaves, const std::vector<int>& user_counts) const;

  /// Figure-series tables: one row per workload, one column per slave count.
  TableWriter ThroughputTable(const std::vector<int>& slave_counts,
                              const std::vector<int>& user_counts) const;
  TableWriter DelayTable(const std::vector<int>& slave_counts,
                         const std::vector<int>& user_counts) const;

 private:
  std::vector<SweepCell> cells_;
};

/// Runs every (slaves, users) combination, on `config.jobs` worker threads
/// when > 1. `progress` (optional) is invoked on the calling thread after
/// each cell completes, always in grid order regardless of `jobs`.
Result<SweepResult> RunSweep(
    const SweepConfig& config,
    const std::function<void(const SweepCell&)>& progress = nullptr);

}  // namespace clouddb::harness

#endif  // CLOUDDB_HARNESS_SWEEP_H_
