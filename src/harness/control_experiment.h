#ifndef CLOUDDB_HARNESS_CONTROL_EXPERIMENT_H_
#define CLOUDDB_HARNESS_CONTROL_EXPERIMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cloud/cloud_provider.h"
#include "cloudstone/operations.h"
#include "common/result.h"
#include "common/time_types.h"
#include "control/elasticity_controller.h"
#include "control/freshness_tracker.h"
#include "repl/heartbeat.h"

namespace clouddb::harness {

/// One closed-loop run of the application-managed control plane: a
/// staleness-bounded workload with a mid-run load step, the freshness
/// tracker feeding the proxy's SLA router, and the elasticity controller
/// scaling the replica tier against the observed lag.
struct ControlExperimentConfig {
  /// Staleness bound carried by every read (negative = unbounded, which
  /// degenerates to the legacy experiment).
  SimDuration staleness_bound = Millis(500);
  /// Users active for the whole measured window.
  int base_users = 10;
  /// Extra users active only inside the surge window — the load step that
  /// drives replication lag up and the controller into action.
  int surge_users = 40;
  /// Idle lead-in before users start (heartbeat baseline, cache warmup).
  SimDuration warmup = Seconds(30);
  /// Measured window (starts after warmup).
  SimDuration measure = Minutes(8);
  /// Surge window, as offsets into the measured window.
  SimDuration surge_start = Minutes(1);
  SimDuration surge_duration = Minutes(3);

  cloudstone::WorkloadMix mix = cloudstone::WorkloadMix::FiftyFifty();
  cloudstone::OperationCosts costs;
  int64_t data_scale = 100;
  int initial_slaves = 1;
  SimDuration think_time_mean = Seconds(1);
  double apply_factor = 0.5;
  bool statement_cache = true;

  /// The control plane under test. Policy is always kFreshnessAware here.
  bool enable_controller = true;
  control::FreshnessTrackerOptions tracker;
  control::ElasticityControllerOptions controller;
  /// Finer heartbeat cadence than the delay experiments: the heartbeat
  /// period is the staleness-measurement granularity, and SLA bounds sit in
  /// the hundreds of milliseconds.
  repl::HeartbeatOptions heartbeat{.period = Millis(250)};

  cloud::CloudOptions cloud;
  uint64_t seed = 42;
  std::optional<uint64_t> placement_seed;
};

struct ControlExperimentResult {
  // Routing outcome (proxy counters over the whole run).
  int64_t bounded_reads = 0;
  int64_t bounded_to_slave = 0;
  int64_t master_fallbacks = 0;
  int64_t read_retries = 0;
  int64_t sla_checked = 0;
  int64_t sla_violations = 0;
  /// % of completed bounded reads whose staleness, re-measured at
  /// completion, was within bound (master reads are within bound by
  /// definition).
  double achieved_freshness_pct = 100.0;
  /// % of bounded reads served by a replica instead of the master — the
  /// offload the freshness SLA still allows.
  double master_offload_pct = 0.0;

  // Controller outcome.
  int64_t scale_outs = 0;
  int64_t scale_ins = 0;
  int final_active_slaves = 0;
  int peak_active_slaves = 0;
  std::vector<control::ScalingEvent> scaling_events;
  /// Worst staleness the tracker observed on any active slave, ms.
  double peak_staleness_ms = 0.0;

  // Workload outcome.
  int64_t completed_ops = 0;
  int64_t failed_ops = 0;
  double throughput_ops = 0.0;  // measured window
  double mean_response_ms = 0.0;

  /// Cluster-wide metric spine, aggregated across every node registry plus
  /// the proxy, tracker, and controller (MergeFrom semantics). Rendered as
  /// a table; byte-identical across same-seed runs.
  std::string metrics_table;

  /// Human-readable replica-count timeline derived from the scaling events.
  std::string TimelineString() const;
};

Result<ControlExperimentResult> RunControlExperiment(
    const ControlExperimentConfig& config);

}  // namespace clouddb::harness

#endif  // CLOUDDB_HARNESS_CONTROL_EXPERIMENT_H_
