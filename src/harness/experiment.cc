#include "harness/experiment.h"

#include <memory>

#include "cloud/ntp.h"
#include "cloudstone/schema.h"
#include "repl/delay_monitor.h"
#include "client/rw_split_proxy.h"
#include "cloud/cloud_provider.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "cloudstone/benchmark_driver.h"
#include "cloudstone/operations.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "db/database.h"
#include "repl/heartbeat.h"
#include "repl/replication_cluster.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"

namespace clouddb::harness {

const char* LocationConfigToString(LocationConfig location) {
  switch (location) {
    case LocationConfig::kSameZone:
      return "same zone (us-west-1a)";
    case LocationConfig::kDifferentZone:
      return "different zone (us-west-1b)";
    case LocationConfig::kDifferentRegion:
      return "different region (eu-west-1a)";
  }
  return "?";
}

cloud::Placement SlavePlacementFor(LocationConfig location) {
  switch (location) {
    case LocationConfig::kSameZone:
      return cloud::SameZonePlacement();
    case LocationConfig::kDifferentZone:
      return cloud::DifferentZonePlacement();
    case LocationConfig::kDifferentRegion:
      return cloud::DifferentRegionPlacement();
  }
  return cloud::SameZonePlacement();
}

Result<ExperimentResult> RunExperiment(const ExperimentConfig& config) {
  Rng seeder(config.seed);
  sim::Simulation sim;
  uint64_t derived_placement_seed = seeder.NextU64();
  cloud::CloudProvider provider(
      &sim, config.cloud,
      config.placement_seed.value_or(derived_placement_seed));

  // L2/L3: the replication tier.
  repl::ClusterConfig cluster_config;
  cluster_config.num_slaves = config.num_slaves;
  cluster_config.slave_placement = SlavePlacementFor(config.location);
  cluster_config.cost_model =
      cloudstone::MakeWorkloadCostModel(config.costs, config.apply_factor);
  cluster_config.synchronous_replication = config.synchronous_replication;
  repl::ReplicationCluster cluster(&provider, cluster_config);
  cluster.SetStatementCacheEnabled(config.statement_cache);
  cluster.SetVectorizedExecEnabled(config.vectorized_exec);
  cluster.SetRowBasedReplication(config.row_based_repl);
  cluster.SetBinlogBatchSize(config.binlog_batch_size);

  // L1: the benchmark driver instance — a large instance in the master's
  // zone ("the benchmark is deployed in a large instance to avoid any
  // overload on the application tier").
  cloud::Instance* bench_instance = provider.Launch(
      "cloudstone", cloud::InstanceType::kLarge, cluster_config.master_placement);

  // NTP daemons, synchronizing every second.
  std::vector<std::unique_ptr<cloud::NtpClient>> ntp_clients;
  if (config.enable_ntp) {
    for (const auto& instance : provider.instances()) {
      ntp_clients.push_back(std::make_unique<cloud::NtpClient>(
          &sim, instance.get(), config.ntp, seeder.NextU64()));
      ntp_clients.back()->StartPeriodic();
    }
  }

  // Pre-load every replica with identical data.
  cloudstone::WorkloadState state;
  uint64_t load_seed = seeder.NextU64();
  Status load_status = cloudstone::LoadInitialData(
      [&](const std::string& sql) {
        return cluster.ExecuteEverywhereDirect(sql);
      },
      config.data_scale, load_seed, &state);
  if (!load_status.ok()) return load_status;

  // Heartbeat probe.
  repl::HeartbeatPlugin heartbeat(&sim, cluster.master(), config.heartbeat);
  CLOUDDB_RETURN_IF_ERROR(heartbeat.CreateTable());
  heartbeat.Start();

  // Idle window: heartbeats with no workload.
  sim.RunUntil(sim.Now() + config.idle_window);
  int64_t idle_max_id = heartbeat.next_id() - 1;

  // The proxy (Connector/J-style) runs inside the benchmark process.
  client::ProxyOptions proxy_options;
  proxy_options.policy = config.policy;
  proxy_options.route_cache = config.statement_cache;
  proxy_options.pool.max_active = std::max(8, config.num_users);
  std::vector<repl::SlaveNode*> slaves;
  for (int i = 0; i < cluster.num_slaves(); ++i) slaves.push_back(cluster.slave(i));
  client::ReadWriteSplitProxy proxy(&sim, &provider.network(),
                                    bench_instance->node_id(),
                                    cluster.master(), slaves, proxy_options);

  cloudstone::OperationGenerator generator(
      config.mix, config.costs, &state,
      [bench_instance] { return bench_instance->LocalNowMicros(); });
  cloudstone::BenchmarkOptions bench_options = config.benchmark;
  bench_options.num_users = config.num_users;
  bench_options.seed = seeder.NextU64();
  cloudstone::BenchmarkDriver driver(&sim, &proxy, &cluster, &generator,
                                     bench_options);
  driver.Start();

  // Record which heartbeat ids fall inside the steady window.
  int64_t loaded_min_id = 0;
  int64_t loaded_max_id = 0;
  sim.ScheduleAt(driver.steady_start(),
                 [&] { loaded_min_id = heartbeat.next_id(); });
  sim.ScheduleAt(driver.steady_end(),
                 [&] { loaded_max_id = heartbeat.next_id() - 1; });

  sim.RunUntil(driver.end_time());
  heartbeat.Stop();
  for (auto& ntp : ntp_clients) ntp->Stop();
  // Drain: outstanding operations complete and relay logs apply fully.
  sim.Run();

  ExperimentResult result;
  result.benchmark = driver.Report();
  result.heartbeats_issued = heartbeat.next_id() - 1;
  result.binlog_events = cluster.master()->database().binlog().size();
  result.fully_replicated = cluster.FullyReplicated();
  result.converged = cluster.Converged();

  db::Database& master_db = cluster.master()->database();
  double sum_relative = 0.0;
  for (int i = 0; i < cluster.num_slaves(); ++i) {
    db::Database& slave_db = cluster.slave(i)->database();
    std::vector<double> idle = repl::HeartbeatDelaysMs(
        master_db, slave_db, 1, idle_max_id, config.heartbeat.table);
    std::vector<double> loaded =
        repl::HeartbeatDelaysMs(master_db, slave_db, loaded_min_id,
                                loaded_max_id, config.heartbeat.table);
    Sample idle_sample;
    idle_sample.AddAll(idle);
    Sample loaded_sample;
    loaded_sample.AddAll(loaded);
    double relative = repl::AverageRelativeDelayMs(loaded, idle);
    result.idle_delay_ms.push_back(idle_sample.TrimmedMean(0.05));
    result.loaded_delay_ms.push_back(loaded_sample.TrimmedMean(0.05));
    result.relative_delay_ms.push_back(relative);
    sum_relative += relative;
  }
  if (cluster.num_slaves() > 0) {
    result.mean_relative_delay_ms =
        sum_relative / static_cast<double>(cluster.num_slaves());
  }
  return result;
}

}  // namespace clouddb::harness
