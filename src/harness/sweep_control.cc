#include "harness/sweep_control.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>

#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/table_writer.h"
#include "harness/control_experiment.h"
#include "common/time_types.h"

namespace clouddb::harness {
namespace {

std::string BoundLabel(SimDuration bound) {
  if (bound < 0) return "unbounded";
  return StrFormat("%lldms", static_cast<long long>(bound / 1000));
}

}  // namespace

const ControlSweepCell* ControlSweepResult::Find(SimDuration bound,
                                                 int users) const {
  for (const ControlSweepCell& cell : cells_) {
    if (cell.bound == bound && cell.users == users) return &cell;
  }
  return nullptr;
}

double ControlSweepResult::AchievedFreshness(SimDuration bound,
                                             int users) const {
  const ControlSweepCell* cell = Find(bound, users);
  return cell == nullptr ? 0.0 : cell->result.achieved_freshness_pct;
}

double ControlSweepResult::MasterOffload(SimDuration bound, int users) const {
  const ControlSweepCell* cell = Find(bound, users);
  return cell == nullptr ? 0.0 : cell->result.master_offload_pct;
}

int ControlSweepResult::PeakReplicas(SimDuration bound, int users) const {
  const ControlSweepCell* cell = Find(bound, users);
  return cell == nullptr ? 0 : cell->result.peak_active_slaves;
}

TableWriter ControlSweepResult::FreshnessTable(
    const std::vector<SimDuration>& bounds,
    const std::vector<int>& user_counts) const {
  std::vector<std::string> header = {"SLA bound"};
  for (int u : user_counts) header.push_back(StrFormat("%d users", u));
  TableWriter table(std::move(header));
  for (SimDuration b : bounds) {
    std::vector<std::string> row = {BoundLabel(b)};
    for (int u : user_counts) {
      row.push_back(StrFormat("%.2f%%", AchievedFreshness(b, u)));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

TableWriter ControlSweepResult::OffloadTable(
    const std::vector<SimDuration>& bounds,
    const std::vector<int>& user_counts) const {
  std::vector<std::string> header = {"SLA bound"};
  for (int u : user_counts) header.push_back(StrFormat("%d users", u));
  TableWriter table(std::move(header));
  for (SimDuration b : bounds) {
    std::vector<std::string> row = {BoundLabel(b)};
    for (int u : user_counts) {
      row.push_back(StrFormat("%.1f%%", MasterOffload(b, u)));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

TableWriter ControlSweepResult::ReplicaTable(
    const std::vector<SimDuration>& bounds,
    const std::vector<int>& user_counts) const {
  std::vector<std::string> header = {"SLA bound"};
  for (int u : user_counts) header.push_back(StrFormat("%d users", u));
  TableWriter table(std::move(header));
  for (SimDuration b : bounds) {
    std::vector<std::string> row = {BoundLabel(b)};
    for (int u : user_counts) {
      const ControlSweepCell* cell = Find(b, u);
      row.push_back(
          cell == nullptr
              ? std::string("-")
              : StrFormat("peak %d, final %d (+%lld/-%lld)",
                          cell->result.peak_active_slaves,
                          cell->result.final_active_slaves,
                          static_cast<long long>(cell->result.scale_outs),
                          static_cast<long long>(cell->result.scale_ins)));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

namespace {

/// Planned grid cell: seeds derived from grid coordinates up front, exactly
/// like harness::RunSweep — the parallel runner's output must be
/// byte-identical to the serial one.
struct PlannedControlCell {
  SimDuration bound = 0;
  int users = 0;
  ControlExperimentConfig run;
};

std::vector<PlannedControlCell> PlanCells(const ControlSweepConfig& config) {
  std::vector<PlannedControlCell> cells;
  cells.reserve(config.staleness_bounds.size() * config.user_counts.size());
  for (SimDuration bound : config.staleness_bounds) {
    for (int users : config.user_counts) {
      ControlExperimentConfig run = config.base;
      run.staleness_bound = bound;
      run.base_users = users;
      run.surge_users =
          static_cast<int>(static_cast<double>(users) * config.surge_factor);
      run.seed = config.base.seed + config.seed_salt +
                 static_cast<uint64_t>(users) * 7919ull +
                 static_cast<uint64_t>(bound < 0 ? 1 : bound) * 104729ull;
      if (!run.placement_seed.has_value()) {
        run.placement_seed = config.base.seed * 131 + config.seed_salt;
      }
      cells.push_back(PlannedControlCell{bound, users, std::move(run)});
    }
  }
  return cells;
}

}  // namespace

Result<ControlSweepResult> RunControlSweep(
    const ControlSweepConfig& config,
    const std::function<void(const ControlSweepCell&)>& progress) {
  const std::vector<PlannedControlCell> cells = PlanCells(config);
  const size_t n = cells.size();
  ControlSweepResult result;

  int jobs = config.jobs;
  if (jobs <= 0) jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 1) jobs = 1;
  if (jobs > static_cast<int>(n)) jobs = static_cast<int>(n);

  if (jobs <= 1) {
    for (const PlannedControlCell& cell : cells) {
      auto outcome = RunControlExperiment(cell.run);
      if (!outcome.ok()) return outcome.status();
      ControlSweepCell done{cell.bound, cell.users,
                            std::move(outcome).value()};
      if (progress) progress(done);
      result.Add(std::move(done));
    }
    return result;
  }

  // Parallel runner: independent single-threaded Simulations per cell; the
  // main thread consumes outcomes strictly in grid order (see RunSweep).
  std::vector<std::optional<Result<ControlExperimentResult>>> outcomes(n);
  std::atomic<size_t> cursor{0};
  std::mutex mu;
  std::condition_variable cell_ready;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        size_t i = cursor.fetch_add(1);
        if (i >= n) return;
        Result<ControlExperimentResult> outcome =
            RunControlExperiment(cells[i].run);
        {
          std::lock_guard<std::mutex> lock(mu);
          outcomes[i] = std::move(outcome);
        }
        cell_ready.notify_all();
      }
    });
  }

  Status failed = Status::Ok();
  for (size_t i = 0; i < n; ++i) {
    std::unique_lock<std::mutex> lock(mu);
    cell_ready.wait(lock, [&] { return outcomes[i].has_value(); });
    Result<ControlExperimentResult>& outcome = *outcomes[i];
    if (!outcome.ok()) {
      failed = outcome.status();
      break;
    }
    ControlSweepCell done{cells[i].bound, cells[i].users,
                          std::move(outcome).value()};
    lock.unlock();
    if (progress) progress(done);
    result.Add(std::move(done));
  }
  for (std::thread& worker : workers) worker.join();
  if (!failed.ok()) return failed;
  return result;
}

}  // namespace clouddb::harness
