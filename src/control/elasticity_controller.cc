#include "control/elasticity_controller.h"

#include "common/str_util.h"
#include "client/rw_split_proxy.h"
#include "common/result.h"
#include "common/time_types.h"
#include "repl/replication_cluster.h"
#include "sim/simulation.h"

namespace clouddb::control {

const char* ScalingActionToString(ScalingAction action) {
  switch (action) {
    case ScalingAction::kScaleOut:
      return "scale_out";
    case ScalingAction::kScaleIn:
      return "scale_in";
  }
  return "?";
}

ElasticityController::ElasticityController(
    sim::Simulation* sim, repl::ReplicationCluster* cluster,
    client::ReadWriteSplitProxy* proxy,
    std::function<double(int)> staleness_probe,
    ElasticityControllerOptions options)
    : sim_(sim), cluster_(cluster), proxy_(proxy),
      staleness_probe_(std::move(staleness_probe)),
      options_(options), metrics_("controller") {
  ticks_ = metrics_.AddCounter("control.ticks");
  scale_outs_ = metrics_.AddCounter("control.scale_out.total");
  scale_ins_ = metrics_.AddCounter("control.scale_in.total");
  metrics_.AddProbe("control.active_slaves", [this] {
    return static_cast<double>(cluster_->num_active_slaves());
  });
  metrics_.AddProbe("control.signal.staleness_ms",
                    [this] { return last_staleness_ms_; });
  metrics_.AddProbe("control.signal.saturation",
                    [this] { return last_saturation_; });
  last_tick_at_ = sim_->Now();
}

void ElasticityController::Start() {
  ticker_.Start(sim_, options_.tick, [this] { Tick(); });
}

void ElasticityController::Stop() { ticker_.Stop(); }

double ElasticityController::WorstStalenessMs() const {
  double worst = -1.0;
  for (int i = 0; i < cluster_->num_slaves(); ++i) {
    if (cluster_->IsSlaveRetired(i)) continue;
    double s = staleness_probe_ ? staleness_probe_(i) : -1.0;
    if (s > worst) worst = s;
  }
  return worst;
}

double ElasticityController::MeanSaturation() {
  while (static_cast<int>(last_busy_micros_.size()) < cluster_->num_slaves()) {
    int index = static_cast<int>(last_busy_micros_.size());
    last_busy_micros_.push_back(
        cluster_->slave(index)->instance().cpu().CumulativeBusyMicros());
  }
  SimDuration elapsed = sim_->Now() - last_tick_at_;
  double sum = 0.0;
  int active = 0;
  for (int i = 0; i < cluster_->num_slaves(); ++i) {
    int64_t busy =
        cluster_->slave(i)->instance().cpu().CumulativeBusyMicros();
    int64_t delta = busy - last_busy_micros_[static_cast<size_t>(i)];
    last_busy_micros_[static_cast<size_t>(i)] = busy;
    if (cluster_->IsSlaveRetired(i)) continue;
    if (elapsed > 0) {
      sum += static_cast<double>(delta) / static_cast<double>(elapsed);
    }
    ++active;
  }
  return active > 0 ? sum / static_cast<double>(active) : 0.0;
}

void ElasticityController::Tick() {
  ticks_->Increment();
  last_staleness_ms_ = WorstStalenessMs();
  last_saturation_ = MeanSaturation();
  last_tick_at_ = sim_->Now();

  if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
    // Streaks do not accumulate through a cooldown: the tier is still
    // settling, so the signal is not yet evidence about the new size.
    out_streak_ = 0;
    in_streak_ = 0;
    return;
  }

  bool lag_high = last_staleness_ms_ >= 0.0 &&
                  last_staleness_ms_ > options_.scale_out_staleness_ms;
  bool saturated = last_saturation_ > options_.scale_out_saturation;
  bool lag_low = last_staleness_ms_ < 0.0 ||
                 last_staleness_ms_ < options_.scale_in_staleness_ms;
  bool idle = last_saturation_ < options_.scale_in_saturation;

  if (lag_high || saturated) {
    ++out_streak_;
    in_streak_ = 0;
  } else if (lag_low && idle) {
    ++in_streak_;
    out_streak_ = 0;
  } else {
    // In the hysteresis band: hold the current size.
    out_streak_ = 0;
    in_streak_ = 0;
  }

  if (out_streak_ >= options_.sustain_ticks &&
      cluster_->num_active_slaves() < options_.max_active_slaves) {
    ScaleOut(lag_high
                 ? StrFormat("staleness %.1fms > %.1fms", last_staleness_ms_,
                             options_.scale_out_staleness_ms)
                 : StrFormat("saturation %.2f > %.2f", last_saturation_,
                             options_.scale_out_saturation));
  } else if (in_streak_ >= options_.sustain_ticks &&
             cluster_->num_active_slaves() > options_.min_active_slaves) {
    ScaleIn(StrFormat("staleness %.1fms, saturation %.2f",
                      last_staleness_ms_, last_saturation_));
  }
}

void ElasticityController::ScaleOut(const std::string& reason) {
  int index = -1;
  for (int i = 0; i < cluster_->num_slaves(); ++i) {
    if (cluster_->IsSlaveRetired(i)) {
      index = i;
      break;
    }
  }
  if (index >= 0) {
    // A retired replica is cheaper to bring back than a fresh launch: the
    // node exists, only the missed binlog span must be resynced.
    if (!cluster_->ReviveSlave(index).ok()) return;
    if (proxy_ != nullptr) proxy_->ReactivateSlave(index);
  } else {
    Result<int> added = cluster_->AddSlave();
    if (!added.ok()) return;
    index = *added;
    if (proxy_ != nullptr) proxy_->AddSlave(cluster_->slave(index));
  }
  scale_outs_->Increment();
  out_streak_ = 0;
  in_streak_ = 0;
  cooldown_remaining_ = options_.cooldown_ticks;
  events_.push_back(ScalingEvent{sim_->Now(), ScalingAction::kScaleOut,
                                 cluster_->num_active_slaves(), reason});
}

void ElasticityController::ScaleIn(const std::string& reason) {
  int index = -1;
  for (int i = cluster_->num_slaves() - 1; i >= 0; --i) {
    if (!cluster_->IsSlaveRetired(i)) {
      index = i;
      break;
    }
  }
  if (index < 0) return;
  // Stop routing reads there first; in-flight reads drain normally.
  if (proxy_ != nullptr) proxy_->DeactivateSlave(index);
  if (!cluster_->RetireSlave(index).ok()) return;
  scale_ins_->Increment();
  out_streak_ = 0;
  in_streak_ = 0;
  cooldown_remaining_ = options_.cooldown_ticks;
  events_.push_back(ScalingEvent{sim_->Now(), ScalingAction::kScaleIn,
                                 cluster_->num_active_slaves(), reason});
}

}  // namespace clouddb::control
