#ifndef CLOUDDB_CONTROL_FRESHNESS_TRACKER_H_
#define CLOUDDB_CONTROL_FRESHNESS_TRACKER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time_types.h"
#include "metrics/metric_registry.h"
#include "repl/replication_cluster.h"
#include "sim/simulation.h"

namespace clouddb::control {

struct FreshnessTrackerOptions {
  /// Heartbeat-scan cadence. The probe's estimate can lag reality by up to
  /// one period — bounded reads re-check at completion precisely because of
  /// this.
  SimDuration poll_period = Millis(250);
  std::string heartbeat_table = "heartbeat";
};

/// Periodically measures each slave's *observed* replication staleness from
/// the paper's heartbeat table, the application-managed counterpart of
/// SHOW SLAVE STATUS. Staleness of slave s is computed purely from
/// master-side commit timestamps:
///
///   staleness(s) = t_master[latest hb id on master]
///                - t_master[latest hb id applied on s]
///
/// Both operands come from the *master's* clock, so inter-instance clock
/// offset/drift cancels exactly — unlike the raw per-id delay, no idle
/// baseline subtraction is needed. Granularity is one heartbeat period.
///
/// The tracker publishes `repl.slave.observed_staleness_ms` into each
/// slave's registry and hands the proxy a probe callback (Probe()) so the
/// client layer can consume the signal without depending on this layer.
class FreshnessTracker {
 public:
  FreshnessTracker(sim::Simulation* sim, repl::ReplicationCluster* cluster,
                   FreshnessTrackerOptions options = {});

  /// Starts periodic polling (first sample after one period).
  void Start();
  void Stop();

  /// Takes one sample immediately (also called by the periodic tick).
  void Poll();

  /// Latest observed staleness of slave `i` in ms; negative when unknown
  /// (never sampled, no heartbeats applied yet, or the slave is retired).
  double StalenessMs(int slave_index) const;

  /// The callback shape ReadWriteSplitProxy::SetStalenessProbe expects.
  std::function<double(int)> Probe();

  int64_t polls() const { return polls_->value(); }
  metrics::MetricRegistry& metrics() { return metrics_; }

 private:
  /// Grows per-slave state when the cluster scaled out since the last poll
  /// and registers the staleness gauge into each new slave's registry.
  void SyncSlaveCount();

  sim::Simulation* sim_;
  repl::ReplicationCluster* cluster_;
  FreshnessTrackerOptions options_;
  std::vector<double> staleness_ms_;  // parallel to cluster slaves
  metrics::MetricRegistry metrics_;
  metrics::Counter* polls_ = nullptr;
  sim::PeriodicTimer ticker_;
};

}  // namespace clouddb::control

#endif  // CLOUDDB_CONTROL_FRESHNESS_TRACKER_H_
