#ifndef CLOUDDB_CONTROL_ELASTICITY_CONTROLLER_H_
#define CLOUDDB_CONTROL_ELASTICITY_CONTROLLER_H_

#include <functional>
#include <string>
#include <vector>

#include "client/rw_split_proxy.h"
#include "common/time_types.h"
#include "metrics/metric_registry.h"
#include "repl/replication_cluster.h"
#include "sim/simulation.h"

namespace clouddb::control {

struct ElasticityControllerOptions {
  /// Control-loop cadence.
  SimDuration tick = Seconds(1);
  /// Scale OUT when the worst active-slave staleness stays above this...
  double scale_out_staleness_ms = 500.0;
  /// ...or when mean active-slave CPU saturation stays above this.
  double scale_out_saturation = 0.85;
  /// Scale IN only when staleness is below this AND saturation is below
  /// scale_in_saturation — the hysteresis gap between the out- and
  /// in-thresholds is what keeps the controller from flapping on a signal
  /// hovering near a single threshold.
  double scale_in_staleness_ms = 100.0;
  double scale_in_saturation = 0.40;
  /// A signal must hold for this many consecutive ticks to trigger — a
  /// one-tick spike (GC pause, load burst) never scales the tier.
  int sustain_ticks = 3;
  /// Ticks after any action during which no further action fires; covers
  /// the time a fresh replica needs to absorb load before re-evaluating.
  int cooldown_ticks = 5;
  int min_active_slaves = 1;
  int max_active_slaves = 8;
};

enum class ScalingAction { kScaleOut, kScaleIn };

const char* ScalingActionToString(ScalingAction action);

struct ScalingEvent {
  SimTime at = 0;
  ScalingAction action = ScalingAction::kScaleOut;
  /// Active replica count after the action.
  int num_active = 0;
  std::string reason;
};

/// The application-managed elasticity loop the paper motivates: the
/// application itself watches replication lag and replica saturation and
/// reconfigures its own database tier — adding replicas under sustained
/// pressure, retiring them when idle — because the cloud provider cannot see
/// inside the replication protocol. Scale-out prefers reviving a retired
/// replica (snapshot refresh + resync) over paying for a fresh instance.
class ElasticityController {
 public:
  /// `proxy` may be null (the cluster still scales; no read rerouting).
  /// `staleness_probe` is FreshnessTracker::Probe() in production; tests may
  /// inject any signal.
  ElasticityController(sim::Simulation* sim,
                       repl::ReplicationCluster* cluster,
                       client::ReadWriteSplitProxy* proxy,
                       std::function<double(int)> staleness_probe,
                       ElasticityControllerOptions options = {});

  void Start();
  void Stop();

  /// One control-loop evaluation (also driven by the periodic timer).
  void Tick();

  const std::vector<ScalingEvent>& events() const { return events_; }
  int64_t ticks() const { return ticks_->value(); }
  /// Signals as of the last Tick (staleness < 0 = unknown).
  double last_staleness_ms() const { return last_staleness_ms_; }
  double last_saturation() const { return last_saturation_; }
  metrics::MetricRegistry& metrics() { return metrics_; }

 private:
  void ScaleOut(const std::string& reason);
  void ScaleIn(const std::string& reason);
  /// Worst known staleness over active slaves; -1 when none is measurable.
  double WorstStalenessMs() const;
  /// Mean busy fraction of active slaves since the previous tick.
  double MeanSaturation();

  sim::Simulation* sim_;
  repl::ReplicationCluster* cluster_;
  client::ReadWriteSplitProxy* proxy_;
  std::function<double(int)> staleness_probe_;
  ElasticityControllerOptions options_;
  std::vector<ScalingEvent> events_;
  /// CumulativeBusyMicros as of the previous tick, per slave (grows as the
  /// cluster does; a slave first seen mid-run starts from its current value).
  std::vector<int64_t> last_busy_micros_;
  SimTime last_tick_at_ = 0;
  int out_streak_ = 0;
  int in_streak_ = 0;
  int cooldown_remaining_ = 0;
  double last_staleness_ms_ = -1.0;
  double last_saturation_ = 0.0;
  metrics::MetricRegistry metrics_;
  metrics::Counter* ticks_ = nullptr;
  metrics::Counter* scale_outs_ = nullptr;
  metrics::Counter* scale_ins_ = nullptr;
  sim::PeriodicTimer ticker_;
};

}  // namespace clouddb::control

#endif  // CLOUDDB_CONTROL_ELASTICITY_CONTROLLER_H_
