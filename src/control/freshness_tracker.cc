#include "control/freshness_tracker.h"

#include <map>

#include "repl/delay_monitor.h"
#include "repl/replication_cluster.h"
#include "sim/simulation.h"

namespace clouddb::control {

FreshnessTracker::FreshnessTracker(sim::Simulation* sim,
                                   repl::ReplicationCluster* cluster,
                                   FreshnessTrackerOptions options)
    : sim_(sim), cluster_(cluster), options_(std::move(options)),
      metrics_("freshness_tracker") {
  polls_ = metrics_.AddCounter("control.freshness.polls");
  SyncSlaveCount();
}

void FreshnessTracker::Start() {
  ticker_.Start(sim_, options_.poll_period, [this] { Poll(); });
}

void FreshnessTracker::Stop() { ticker_.Stop(); }

void FreshnessTracker::SyncSlaveCount() {
  while (static_cast<int>(staleness_ms_.size()) < cluster_->num_slaves()) {
    int index = static_cast<int>(staleness_ms_.size());
    staleness_ms_.push_back(-1.0);
    cluster_->slave(index)->metrics().AddProbe(
        "repl.slave.observed_staleness_ms",
        [this, index] { return StalenessMs(index); });
  }
}

void FreshnessTracker::Poll() {
  polls_->Increment();
  SyncSlaveCount();
  std::map<int64_t, int64_t> master_hb = repl::ReadHeartbeats(
      cluster_->master()->database(), options_.heartbeat_table);
  if (master_hb.empty()) {
    // No heartbeats committed yet: nothing to measure.
    for (double& s : staleness_ms_) s = -1.0;
    return;
  }
  int64_t master_latest_id = master_hb.rbegin()->first;
  int64_t master_latest_ts = master_hb.rbegin()->second;
  for (int i = 0; i < cluster_->num_slaves(); ++i) {
    if (cluster_->IsSlaveRetired(i)) {
      staleness_ms_[static_cast<size_t>(i)] = -1.0;
      continue;
    }
    std::map<int64_t, int64_t> slave_hb = repl::ReadHeartbeats(
        cluster_->slave(i)->database(), options_.heartbeat_table);
    double staleness = -1.0;
    // Latest heartbeat the slave has applied that the master also knows
    // about; both timestamps are master-local, so the clock offset cancels.
    for (auto it = slave_hb.rbegin(); it != slave_hb.rend(); ++it) {
      auto on_master = master_hb.find(it->first);
      if (on_master != master_hb.end()) {
        staleness = static_cast<double>(
                        (it->first == master_latest_id
                             ? 0
                             : master_latest_ts - on_master->second)) /
                    1000.0;
        break;
      }
    }
    staleness_ms_[static_cast<size_t>(i)] = staleness;
  }
}

double FreshnessTracker::StalenessMs(int slave_index) const {
  if (slave_index < 0 ||
      slave_index >= static_cast<int>(staleness_ms_.size())) {
    return -1.0;
  }
  return staleness_ms_[static_cast<size_t>(slave_index)];
}

std::function<double(int)> FreshnessTracker::Probe() {
  return [this](int slave_index) { return StalenessMs(slave_index); };
}

}  // namespace clouddb::control
