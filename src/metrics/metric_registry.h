#ifndef CLOUDDB_METRICS_METRIC_REGISTRY_H_
#define CLOUDDB_METRICS_METRIC_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"

namespace clouddb::metrics {

/// The metrics spine: one `MetricRegistry` per node (or per component),
/// aggregated cluster-wide with `MergeFrom`. The registry is deliberately
/// clock-free — it never reads wall or simulated time. Samplers that need a
/// timestamp are fed one by the instrumented code (a sim-clock-driven poller
/// or an event handler), so the same registry contents are reproduced byte-
/// for-byte by a reseeded run. Names are lowercase dot-separated
/// ("module.signal.unit"-style), registered exactly once per registry; both
/// properties are enforced here at registration and statically by the
/// `clouddb-metric-name` lint rule.

enum class MetricKind { kCounter, kGauge, kEwma, kHistogram };

/// Monotone event count (e.g. reads routed, SLA violations).
class Counter {
 public:
  void Increment(int64_t n = 1) { value_ += n; }
  int64_t value() const { return value_; }

 private:
  friend class MetricRegistry;
  int64_t value_ = 0;
};

/// Point-in-time level. Push-model gauges are Set() by the instrumented
/// code; pull-model gauges carry a probe callback and cost nothing on the
/// hot path — the value is computed only when somebody reads it.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return probe_ ? probe_() : value_; }
  bool is_probe() const { return static_cast<bool>(probe_); }

 private:
  friend class MetricRegistry;
  double value_ = 0.0;
  std::function<double()> probe_;
};

/// Exponentially weighted moving average over observed samples. Decay is per
/// observation, not per unit time, which keeps the sampler clock-free.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void Observe(double v) {
    value_ = count_ == 0 ? v : (1.0 - alpha_) * value_ + alpha_ * v;
    ++count_;
  }
  double value() const { return value_; }
  int64_t count() const { return count_; }
  double alpha() const { return alpha_; }

 private:
  friend class MetricRegistry;
  double alpha_;
  double value_ = 0.0;
  int64_t count_ = 0;
};

/// Log-bucketed distribution sampler wrapping clouddb::Histogram.
class HistogramSampler {
 public:
  HistogramSampler(double first_upper, double base, int num_buckets)
      : histogram_(first_upper, base, num_buckets) {}
  explicit HistogramSampler(Histogram seed) : histogram_(std::move(seed)) {}

  void Observe(double v) { histogram_.Add(v); }
  const Histogram& histogram() const { return histogram_; }

 private:
  friend class MetricRegistry;
  Histogram histogram_;
};

/// One row of a registry snapshot. `value` is the counter total, gauge
/// level, EWMA value, or histogram p95; `count` is the number of
/// observations (1 for counters/gauges).
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  int64_t count = 0;
};

const char* MetricKindName(MetricKind kind);

class MetricRegistry {
 public:
  /// `scope` labels the owning node/component ("master", "slave-2",
  /// "proxy") in rendered tables; it is not part of metric names.
  explicit MetricRegistry(std::string scope = "");

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Registration. Names must satisfy IsValidName and be unique within the
  /// registry; violations abort (they are programming errors, caught in any
  /// test that exercises the instrumented path). Returned pointers stay
  /// valid for the registry's lifetime.
  Counter* AddCounter(const std::string& name);
  Gauge* AddGauge(const std::string& name);
  /// Pull-model gauge: `probe` is evaluated on read, so instrumenting an
  /// existing counter field costs nothing on the hot path.
  Gauge* AddProbe(const std::string& name, std::function<double()> probe);
  Ewma* AddEwma(const std::string& name, double alpha = 0.2);
  HistogramSampler* AddHistogram(const std::string& name, double first_upper,
                                 double base, int num_buckets);

  /// Lookup; nullptr (or 0.0 for ValueOf) when the name is absent or of a
  /// different kind.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Ewma* FindEwma(const std::string& name) const;
  const HistogramSampler* FindHistogram(const std::string& name) const;
  bool Has(const std::string& name) const;
  /// The snapshot `value` of one metric: counter total, gauge level, EWMA
  /// value, histogram p95. 0.0 when absent.
  double ValueOf(const std::string& name) const;

  const std::string& scope() const { return scope_; }
  size_t size() const { return metrics_.size(); }

  /// Lowercase dot-separated with at least two non-empty segments of
  /// [a-z0-9_], e.g. "repl.slave.apply_backlog".
  static bool IsValidName(const std::string& name);

  /// Name-ordered snapshot of every metric (deterministic: std::map order).
  std::vector<MetricSnapshot> Snapshot() const;

  /// Cluster-wide aggregation: folds `other` into this registry. Counters
  /// and histogram buckets add, gauges sum (probes are sampled at merge
  /// time and become plain values), EWMAs combine count-weighted. Metrics
  /// absent here are created; same-named metrics must have the same kind.
  void MergeFrom(const MetricRegistry& other);

  /// Aligned table of the snapshot: metric | kind | value | count.
  std::string ToString() const;

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Ewma> ewma;
    std::unique_ptr<HistogramSampler> histogram;
  };

  Entry* Register(const std::string& name, MetricKind kind);

  std::string scope_;
  std::map<std::string, Entry> metrics_;
};

}  // namespace clouddb::metrics

#endif  // CLOUDDB_METRICS_METRIC_REGISTRY_H_
