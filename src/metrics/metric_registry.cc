#include "metrics/metric_registry.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/str_util.h"
#include "common/table_writer.h"

namespace clouddb::metrics {
namespace {

[[noreturn]] void DieBadRegistration(const std::string& scope,
                                     const std::string& name,
                                     const char* why) {
  std::fprintf(stderr, "MetricRegistry(%s): metric '%s' %s\n",
               scope.empty() ? "<anon>" : scope.c_str(), name.c_str(), why);
  std::abort();
}

}  // namespace

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kEwma: return "ewma";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

MetricRegistry::MetricRegistry(std::string scope) : scope_(std::move(scope)) {}

bool MetricRegistry::IsValidName(const std::string& name) {
  int segments = 0;
  size_t seg_len = 0;
  for (char c : name) {
    if (c == '.') {
      if (seg_len == 0) return false;  // empty segment ("a..b", ".a")
      ++segments;
      seg_len = 0;
      continue;
    }
    bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
    ++seg_len;
  }
  if (seg_len == 0) return false;  // trailing dot or empty name
  return segments + 1 >= 2;        // hierarchical: at least "module.signal"
}

MetricRegistry::Entry* MetricRegistry::Register(const std::string& name,
                                                MetricKind kind) {
  if (!IsValidName(name)) {
    DieBadRegistration(scope_, name,
                       "is not a lowercase dot-separated metric name");
  }
  auto [it, inserted] = metrics_.try_emplace(name);
  if (!inserted) {
    DieBadRegistration(scope_, name, "is already registered");
  }
  it->second.kind = kind;
  return &it->second;
}

Counter* MetricRegistry::AddCounter(const std::string& name) {
  Entry* e = Register(name, MetricKind::kCounter);
  e->counter = std::make_unique<Counter>();
  return e->counter.get();
}

Gauge* MetricRegistry::AddGauge(const std::string& name) {
  Entry* e = Register(name, MetricKind::kGauge);
  e->gauge = std::make_unique<Gauge>();
  return e->gauge.get();
}

Gauge* MetricRegistry::AddProbe(const std::string& name,
                                std::function<double()> probe) {
  Entry* e = Register(name, MetricKind::kGauge);
  e->gauge = std::make_unique<Gauge>();
  e->gauge->probe_ = std::move(probe);
  return e->gauge.get();
}

Ewma* MetricRegistry::AddEwma(const std::string& name, double alpha) {
  Entry* e = Register(name, MetricKind::kEwma);
  e->ewma = std::make_unique<Ewma>(alpha);
  return e->ewma.get();
}

HistogramSampler* MetricRegistry::AddHistogram(const std::string& name,
                                               double first_upper, double base,
                                               int num_buckets) {
  Entry* e = Register(name, MetricKind::kHistogram);
  e->histogram =
      std::make_unique<HistogramSampler>(first_upper, base, num_buckets);
  return e->histogram.get();
}

const Counter* MetricRegistry::FindCounter(const std::string& name) const {
  auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : it->second.counter.get();
}

const Gauge* MetricRegistry::FindGauge(const std::string& name) const {
  auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : it->second.gauge.get();
}

const Ewma* MetricRegistry::FindEwma(const std::string& name) const {
  auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : it->second.ewma.get();
}

const HistogramSampler* MetricRegistry::FindHistogram(
    const std::string& name) const {
  auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : it->second.histogram.get();
}

bool MetricRegistry::Has(const std::string& name) const {
  return metrics_.count(name) > 0;
}

double MetricRegistry::ValueOf(const std::string& name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) return 0.0;
  const Entry& e = it->second;
  switch (e.kind) {
    case MetricKind::kCounter:
      return static_cast<double>(e.counter->value());
    case MetricKind::kGauge:
      return e.gauge->value();
    case MetricKind::kEwma:
      return e.ewma->value();
    case MetricKind::kHistogram:
      return e.histogram->histogram().ApproxPercentile(0.95);
  }
  return 0.0;
}

std::vector<MetricSnapshot> MetricRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  out.reserve(metrics_.size());
  for (const auto& [name, e] : metrics_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        snap.value = static_cast<double>(e.counter->value());
        snap.count = 1;
        break;
      case MetricKind::kGauge:
        snap.value = e.gauge->value();
        snap.count = 1;
        break;
      case MetricKind::kEwma:
        snap.value = e.ewma->value();
        snap.count = e.ewma->count();
        break;
      case MetricKind::kHistogram:
        snap.value = e.histogram->histogram().ApproxPercentile(0.95);
        snap.count = e.histogram->histogram().TotalCount();
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void MetricRegistry::MergeFrom(const MetricRegistry& other) {
  for (const auto& [name, theirs] : other.metrics_) {
    auto it = metrics_.find(name);
    if (it == metrics_.end()) {
      Entry fresh;
      fresh.kind = theirs.kind;
      switch (theirs.kind) {
        case MetricKind::kCounter:
          fresh.counter = std::make_unique<Counter>();
          fresh.counter->value_ = theirs.counter->value();
          break;
        case MetricKind::kGauge:
          // Probes are sampled now: an aggregate registry outlives the
          // objects the probes read.
          fresh.gauge = std::make_unique<Gauge>();
          fresh.gauge->value_ = theirs.gauge->value();
          break;
        case MetricKind::kEwma:
          fresh.ewma = std::make_unique<Ewma>(theirs.ewma->alpha());
          fresh.ewma->value_ = theirs.ewma->value();
          fresh.ewma->count_ = theirs.ewma->count();
          break;
        case MetricKind::kHistogram:
          fresh.histogram =
              std::make_unique<HistogramSampler>(theirs.histogram->histogram_);
          break;
      }
      metrics_.emplace(name, std::move(fresh));
      continue;
    }
    Entry& mine = it->second;
    if (mine.kind != theirs.kind) {
      DieBadRegistration(scope_, name, "merged with a different metric kind");
    }
    switch (mine.kind) {
      case MetricKind::kCounter:
        mine.counter->value_ += theirs.counter->value();
        break;
      case MetricKind::kGauge:
        mine.gauge->value_ = mine.gauge->value() + theirs.gauge->value();
        mine.gauge->probe_ = nullptr;  // the sum is a plain value now
        break;
      case MetricKind::kEwma: {
        int64_t total = mine.ewma->count_ + theirs.ewma->count();
        if (total > 0) {
          mine.ewma->value_ =
              (mine.ewma->value_ * static_cast<double>(mine.ewma->count_) +
               theirs.ewma->value() * static_cast<double>(theirs.ewma->count())) /
              static_cast<double>(total);
        }
        mine.ewma->count_ = total;
        break;
      }
      case MetricKind::kHistogram:
        mine.histogram->histogram_.Merge(theirs.histogram->histogram());
        break;
    }
  }
}

std::string MetricRegistry::ToString() const {
  TableWriter table({"metric", "kind", "value", "count"});
  for (const MetricSnapshot& snap : Snapshot()) {
    table.AddRow({snap.name, MetricKindName(snap.kind),
                  StrFormat("%.3f", snap.value),
                  StrFormat("%lld", static_cast<long long>(snap.count))});
  }
  std::string head = scope_.empty() ? std::string("metrics")
                                    : "metrics [" + scope_ + "]";
  return head + "\n" + table.ToAscii();
}

}  // namespace clouddb::metrics
