#ifndef CLOUDDB_CLOUD_INSTANCE_H_
#define CLOUDDB_CLOUD_INSTANCE_H_

#include <memory>
#include <string>

#include "cloud/placement.h"
#include "net/network.h"
#include "sim/cpu_scheduler.h"
#include "sim/local_clock.h"
#include "sim/simulation.h"

namespace clouddb::cloud {

/// EC2-style instance sizes. The paper runs the master and all slaves on
/// *small* instances ("so that saturation is expected to be observed early")
/// and the benchmark driver on a *large* instance.
enum class InstanceType {
  kSmall,
  kLarge,
};

const char* InstanceTypeToString(InstanceType t);

/// Nominal core count / per-core speed for an instance type.
struct InstanceSpec {
  int cores;
  double base_speed;
};

InstanceSpec SpecFor(InstanceType type);

/// A launched virtual machine: compute (CpuScheduler), a drifting local clock,
/// a network endpoint, and a placement. The actual per-instance speed deviates
/// from the type's nominal speed by the sampled performance-variation factor
/// (paper §IV-A: poor-performing instances "are launched randomly and can
/// largely affect application performance").
class Instance {
 public:
  Instance(sim::Simulation* sim, std::string name, InstanceType type,
           Placement placement, net::NodeId node_id, double speed_factor,
           SimDuration clock_offset, double clock_drift_ppm);

  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  const std::string& name() const { return name_; }
  InstanceType type() const { return type_; }
  const Placement& placement() const { return placement_; }
  net::NodeId node_id() const { return node_id_; }

  /// Effective speed: nominal speed for the type times the sampled variation.
  double speed_factor() const { return cpu_.speed_factor(); }

  sim::CpuScheduler& cpu() { return cpu_; }
  const sim::CpuScheduler& cpu() const { return cpu_; }
  sim::LocalClock& clock() { return clock_; }
  const sim::LocalClock& clock() const { return clock_; }

  /// Local wall time right now (µs); what applications on this instance see.
  int64_t LocalNowMicros() const { return clock_.NowMicros(sim_->Now()); }

 private:
  sim::Simulation* sim_;
  std::string name_;
  InstanceType type_;
  Placement placement_;
  net::NodeId node_id_;
  sim::CpuScheduler cpu_;
  sim::LocalClock clock_;
};

}  // namespace clouddb::cloud

#endif  // CLOUDDB_CLOUD_INSTANCE_H_
