#ifndef CLOUDDB_CLOUD_INSTANCE_H_
#define CLOUDDB_CLOUD_INSTANCE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cloud/placement.h"
#include "net/network.h"
#include "sim/cpu_scheduler.h"
#include "sim/local_clock.h"
#include "sim/simulation.h"
#include "common/time_types.h"

namespace clouddb::cloud {

/// EC2-style instance sizes. The paper runs the master and all slaves on
/// *small* instances ("so that saturation is expected to be observed early")
/// and the benchmark driver on a *large* instance.
enum class InstanceType {
  kSmall,
  kLarge,
};

const char* InstanceTypeToString(InstanceType t);

/// Nominal core count / per-core speed for an instance type.
struct InstanceSpec {
  int cores;
  double base_speed;
};

InstanceSpec SpecFor(InstanceType type);

/// A launched virtual machine: compute (CpuScheduler), a drifting local clock,
/// a network endpoint, and a placement. The actual per-instance speed deviates
/// from the type's nominal speed by the sampled performance-variation factor
/// (paper §IV-A: poor-performing instances "are launched randomly and can
/// largely affect application performance").
class Instance {
 public:
  Instance(sim::Simulation* sim, std::string name, InstanceType type,
           Placement placement, net::NodeId node_id, double speed_factor,
           SimDuration clock_offset, double clock_drift_ppm);

  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  const std::string& name() const { return name_; }
  InstanceType type() const { return type_; }
  const Placement& placement() const { return placement_; }
  net::NodeId node_id() const { return node_id_; }

  /// Effective speed: nominal speed for the type times the sampled variation.
  double speed_factor() const { return cpu_.speed_factor(); }

  sim::CpuScheduler& cpu() { return cpu_; }
  const sim::CpuScheduler& cpu() const { return cpu_; }
  sim::LocalClock& clock() { return clock_; }
  const sim::LocalClock& clock() const { return clock_; }

  /// Local wall time right now (µs); what applications on this instance see.
  int64_t LocalNowMicros() const { return clock_.NowMicros(sim_->Now()); }

  // --- Instance-level faults (see clouddb::fault::FaultInjector) ---

  /// True while the VM is powered on. Crashed instances keep their network
  /// endpoint (messages to them are delivered into processes that check
  /// `running()`/`online()` and stay silent) but lose all in-flight and
  /// queued CPU work.
  bool running() const { return running_; }

  /// Instance failure: halts the CPU (queued and in-flight jobs evaporate)
  /// and notifies power listeners with `false`. Idempotent. Durable state —
  /// each DbNode's database, modelling an EBS volume — survives; volatile
  /// state (relay logs, CPU queues) is the listeners' job to discard.
  void Crash();

  /// Boots the instance back up: resumes the CPU and notifies power
  /// listeners with `true`. Idempotent.
  void Restart();

  /// Registers `listener(running)` to fire on every Crash()/Restart()
  /// transition. Listeners (the DbNodes hosted here) must outlive the
  /// instance or never receive an event after their destruction — in
  /// practice: do not run the simulation after destroying hosted nodes.
  void AddPowerListener(std::function<void(bool)> listener) {
    power_listeners_.push_back(std::move(listener));
  }

  /// Uptime counters: number of crashes survived.
  int64_t crash_count() const { return crash_count_; }

 private:
  sim::Simulation* sim_;
  std::string name_;
  InstanceType type_;
  Placement placement_;
  net::NodeId node_id_;
  sim::CpuScheduler cpu_;
  sim::LocalClock clock_;
  bool running_ = true;
  int64_t crash_count_ = 0;
  std::vector<std::function<void(bool)>> power_listeners_;
};

}  // namespace clouddb::cloud

#endif  // CLOUDDB_CLOUD_INSTANCE_H_
