#ifndef CLOUDDB_CLOUD_CLOUD_PROVIDER_H_
#define CLOUDDB_CLOUD_CLOUD_PROVIDER_H_

#include <memory>
#include <string>
#include <vector>

#include "cloud/instance.h"
#include "cloud/placement.h"
#include "common/rng.h"
#include "common/time_types.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace clouddb::cloud {

/// Tunable characteristics of the simulated cloud.
struct CloudOptions {
  /// Coefficient of variation of instance CPU speed (Schad et al. [13]
  /// measured 0.21 for EC2 small instances). Speed factors are clamped to
  /// [min_speed_factor, max_speed_factor].
  double cpu_speed_cov = 0.21;
  double min_speed_factor = 0.45;
  double max_speed_factor = 1.60;

  /// One-way network latency by proximity class (means) and the lognormal
  /// jitter sigma applied multiplicatively. Defaults reproduce the paper's
  /// measured ½-RTTs of 16 / 21 / 173 ms.
  SimDuration same_zone_one_way = Millis(16);
  SimDuration different_zone_one_way = Millis(21);
  SimDuration different_region_one_way = Millis(173);
  double latency_jitter_sigma = 0.08;
  /// Loopback / intra-instance latency.
  SimDuration loopback_one_way = Micros(50);

  /// Clock model: initial offsets uniform in ±max, drift uniform in ±max.
  /// ±18 ppm per instance gives up to ~36 ppm relative drift — the paper's
  /// Fig. 4 observes ~43 ms of divergence over 20 min (~36 ppm).
  SimDuration max_initial_clock_offset = Millis(4);
  double max_clock_drift_ppm = 18.0;
};

/// Launches instances and provides the network that connects them. One-way
/// delays between instances are determined by their placements' proximity
/// class plus multiplicative lognormal jitter.
class CloudProvider : public net::LatencyModel {
 public:
  CloudProvider(sim::Simulation* sim, const CloudOptions& options,
                uint64_t seed);

  CloudProvider(const CloudProvider&) = delete;
  CloudProvider& operator=(const CloudProvider&) = delete;

  /// Launches a new instance. The returned pointer is owned by the provider
  /// and valid for the provider's lifetime.
  Instance* Launch(const std::string& name, InstanceType type,
                   const Placement& placement);

  /// The message-passing fabric between launched instances.
  net::Network& network() { return *network_; }
  sim::Simulation& simulation() { return *sim_; }
  const CloudOptions& options() const { return options_; }

  const std::vector<std::unique_ptr<Instance>>& instances() const {
    return instances_;
  }
  /// Instance owning `node`, or nullptr.
  Instance* FindByNode(net::NodeId node) const;
  /// Instance launched under `name`, or nullptr. Names are how fault
  /// schedules address targets (declarative, resolved at arm time).
  Instance* FindByName(const std::string& name) const;

  // net::LatencyModel:
  SimDuration SampleOneWay(net::NodeId from, net::NodeId to) override;

  /// Mean one-way delay for a proximity class (without jitter).
  SimDuration BaseOneWay(Proximity p) const;

 private:
  sim::Simulation* sim_;
  CloudOptions options_;
  Rng rng_;
  std::vector<std::unique_ptr<Instance>> instances_;
  std::unique_ptr<net::Network> network_;
};

}  // namespace clouddb::cloud

#endif  // CLOUDDB_CLOUD_CLOUD_PROVIDER_H_
