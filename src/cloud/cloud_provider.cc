#include "cloud/cloud_provider.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "common/time_types.h"
#include "net/network.h"
#include "sim/simulation.h"

#include <cassert>

namespace clouddb::cloud {

const char* InstanceTypeToString(InstanceType t) {
  switch (t) {
    case InstanceType::kSmall:
      return "small";
    case InstanceType::kLarge:
      return "large";
  }
  return "?";
}

InstanceSpec SpecFor(InstanceType type) {
  switch (type) {
    case InstanceType::kSmall:
      // One virtual core at baseline speed: the unit all CPU costs are
      // calibrated against (the paper's m1.small).
      return InstanceSpec{1, 1.0};
    case InstanceType::kLarge:
      // Two faster cores (the paper's m1.large benchmark host, provisioned
      // so the load generator never saturates).
      return InstanceSpec{2, 2.0};
  }
  return InstanceSpec{1, 1.0};
}

Instance::Instance(sim::Simulation* sim, std::string name, InstanceType type,
                   Placement placement, net::NodeId node_id,
                   double speed_factor, SimDuration clock_offset,
                   double clock_drift_ppm)
    : sim_(sim),
      name_(std::move(name)),
      type_(type),
      placement_(std::move(placement)),
      node_id_(node_id),
      cpu_(sim, SpecFor(type).cores, speed_factor),
      clock_(clock_offset, clock_drift_ppm) {}

void Instance::Crash() {
  if (!running_) return;
  running_ = false;
  ++crash_count_;
  cpu_.Halt();
  for (const auto& listener : power_listeners_) listener(false);
}

void Instance::Restart() {
  if (running_) return;
  running_ = true;
  cpu_.Thaw();
  for (const auto& listener : power_listeners_) listener(true);
}

CloudProvider::CloudProvider(sim::Simulation* sim, const CloudOptions& options,
                             uint64_t seed)
    : sim_(sim), options_(options), rng_(seed) {
  network_ = std::make_unique<net::Network>(sim_, this);
}

Instance* CloudProvider::Launch(const std::string& name, InstanceType type,
                                const Placement& placement) {
  net::NodeId node_id = static_cast<net::NodeId>(instances_.size());
  InstanceSpec spec = SpecFor(type);
  double variation = rng_.ClampedNormal(
      1.0, options_.cpu_speed_cov, options_.min_speed_factor,
      options_.max_speed_factor);
  double speed = spec.base_speed * variation;
  SimDuration offset = static_cast<SimDuration>(rng_.Uniform(
      -static_cast<double>(options_.max_initial_clock_offset),
      static_cast<double>(options_.max_initial_clock_offset)));
  double drift = rng_.Uniform(-options_.max_clock_drift_ppm,
                              options_.max_clock_drift_ppm);
  instances_.push_back(std::make_unique<Instance>(
      sim_, name, type, placement, node_id, speed, offset, drift));
  return instances_.back().get();
}

Instance* CloudProvider::FindByName(const std::string& name) const {
  for (const auto& instance : instances_) {
    if (instance->name() == name) return instance.get();
  }
  return nullptr;
}

Instance* CloudProvider::FindByNode(net::NodeId node) const {
  if (node < 0 || static_cast<size_t>(node) >= instances_.size()) {
    return nullptr;
  }
  return instances_[static_cast<size_t>(node)].get();
}

SimDuration CloudProvider::BaseOneWay(Proximity p) const {
  switch (p) {
    case Proximity::kSameZone:
      return options_.same_zone_one_way;
    case Proximity::kDifferentZone:
      return options_.different_zone_one_way;
    case Proximity::kDifferentRegion:
      return options_.different_region_one_way;
  }
  return options_.same_zone_one_way;
}

SimDuration CloudProvider::SampleOneWay(net::NodeId from, net::NodeId to) {
  if (from == to) return options_.loopback_one_way;
  Instance* a = FindByNode(from);
  Instance* b = FindByNode(to);
  assert(a != nullptr && b != nullptr);
  SimDuration base = BaseOneWay(ClassifyProximity(a->placement(),
                                                  b->placement()));
  // Multiplicative lognormal jitter around the base latency.
  double jitter = rng_.LogNormal(1.0, options_.latency_jitter_sigma);
  SimDuration d = static_cast<SimDuration>(static_cast<double>(base) * jitter);
  return d < 0 ? 0 : d;
}

}  // namespace clouddb::cloud
