#include "cloud/ntp.h"
#include "cloud/instance.h"
#include "common/time_types.h"
#include "sim/simulation.h"

#include <cassert>
#include <cmath>

namespace clouddb::cloud {

NtpClient::NtpClient(sim::Simulation* sim, Instance* instance,
                     const NtpOptions& options, uint64_t seed)
    : sim_(sim), instance_(instance), options_(options), rng_(seed) {
  assert(sim != nullptr && instance != nullptr);
  bias_ms_ = options_.fixed_bias_ms.has_value()
                 ? *options_.fixed_bias_ms
                 : rng_.Uniform(-options_.max_bias_ms, options_.max_bias_ms);
}

void NtpClient::SyncOnce() {
  ++syncs_performed_;
  SimTime now = sim_->Now();
  double error_ms = bias_ms_ + rng_.Normal(0.0, options_.residual_noise_ms);
  instance_->clock().StepTo(now, now + MillisF(error_ms));
}

void NtpClient::StartPeriodic() {
  running_ = true;
  // First sync is synchronous; the periodic timer re-arms in place after
  // that, so a per-second NTP daemon costs no allocations at steady state.
  ticker_.Start(sim_, options_.sync_interval, [this] { Tick(); });
  Tick();
}

void NtpClient::Stop() {
  running_ = false;
  ticker_.Stop();
}

void NtpClient::Tick() {
  if (!running_) return;
  SyncOnce();
}

ClockComparison::ClockComparison(sim::Simulation* sim, const Instance* a,
                                 const Instance* b)
    : sim_(sim), a_(a), b_(b) {
  assert(sim != nullptr && a != nullptr && b != nullptr);
}

void ClockComparison::Start(SimDuration interval, int count) {
  interval_ = interval;
  remaining_ = count;
  diffs_ms_.reserve(static_cast<size_t>(count));
  SampleOnce();
  if (remaining_ > 0) {
    sampler_.Start(sim_, interval_, [this] { SampleOnce(); });
  }
}

void ClockComparison::SampleOnce() {
  if (remaining_ <= 0) return;
  --remaining_;
  int64_t diff = a_->LocalNowMicros() - b_->LocalNowMicros();
  diffs_ms_.push_back(std::abs(ToMillis(diff)));
  // Stopping from inside the timer's own tick cancels the already re-armed
  // next occurrence.
  if (remaining_ == 0) sampler_.Stop();
}

}  // namespace clouddb::cloud
