#ifndef CLOUDDB_CLOUD_NTP_H_
#define CLOUDDB_CLOUD_NTP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "cloud/instance.h"
#include "common/rng.h"
#include "common/time_types.h"
#include "sim/simulation.h"

namespace clouddb::cloud {

/// NTP client behaviour knobs.
struct NtpOptions {
  /// How often the daemon re-synchronizes. The paper contrasts syncing once
  /// at the beginning of the experiment with syncing every second
  /// ("we set the NTP protocol to synchronize with multiple time servers
  /// every second to have a better resolution").
  SimDuration sync_interval = Seconds(1);

  /// Per-sync measurement noise (std-dev, ms): network jitter on the NTP
  /// exchange leaves this residual error after each step.
  double residual_noise_ms = 0.85;

  /// Per-instance systematic bias (uniform in ±max_bias_ms): asymmetric
  /// network paths make an instance consistently early or late relative to
  /// the reference even right after a sync.
  double max_bias_ms = 2.5;

  /// When set, use exactly this bias instead of sampling one — a calibration
  /// hook for reproducing a specific measured instance pair (Fig. 4).
  std::optional<double> fixed_bias_ms;
};

/// Simulated NTP daemon for one instance. On each sync it measures the offset
/// to true (reference) time — imperfectly — and steps the instance clock.
/// Between syncs the clock drifts at the instance's intrinsic rate; Amazon
/// itself synchronizes "in a very relaxed manner — every couple of hours"
/// (paper §IV-B.1), which we model as no background sync at all within a run.
class NtpClient {
 public:
  NtpClient(sim::Simulation* sim, Instance* instance, const NtpOptions& options,
            uint64_t seed);

  /// Performs a single synchronization right now.
  void SyncOnce();

  /// Synchronizes now and then every `options.sync_interval` until `Stop()`.
  void StartPeriodic();
  void Stop();

  int64_t syncs_performed() const { return syncs_performed_; }
  /// The sampled systematic bias for this client, ms.
  double bias_ms() const { return bias_ms_; }

 private:
  void Tick();

  sim::Simulation* sim_;
  Instance* instance_;
  NtpOptions options_;
  Rng rng_;
  double bias_ms_;
  bool running_ = false;
  int64_t syncs_performed_ = 0;
  sim::PeriodicTimer ticker_;
};

/// Samples the reading difference between two instances' clocks at a fixed
/// cadence — the measurement behind the paper's Fig. 4 ("measured time
/// differences between two instances", ms).
class ClockComparison {
 public:
  ClockComparison(sim::Simulation* sim, const Instance* a, const Instance* b);

  /// Schedules `count` samples spaced `interval` apart, starting now.
  void Start(SimDuration interval, int count);

  /// |clock_a - clock_b| in ms per sample, in sampling order.
  const std::vector<double>& differences_ms() const { return diffs_ms_; }

 private:
  void SampleOnce();

  sim::Simulation* sim_;
  const Instance* a_;
  const Instance* b_;
  SimDuration interval_ = 0;
  int remaining_ = 0;
  std::vector<double> diffs_ms_;
  sim::PeriodicTimer sampler_;
};

}  // namespace clouddb::cloud

#endif  // CLOUDDB_CLOUD_NTP_H_
