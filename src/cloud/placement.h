#ifndef CLOUDDB_CLOUD_PLACEMENT_H_
#define CLOUDDB_CLOUD_PLACEMENT_H_

#include <string>

namespace clouddb::cloud {

/// Where an instance lives: a region (geographic area, e.g. "us-west") and an
/// availability zone within it (e.g. "us-west-1a"). Mirrors the EC2 notions
/// the paper's experiment configurations are built from: *same zone*,
/// *different zone* (same region), *different region*.
struct Placement {
  std::string region;
  std::string zone;

  friend bool operator==(const Placement& a, const Placement& b) {
    return a.region == b.region && a.zone == b.zone;
  }

  std::string ToString() const { return region + "/" + zone; }
};

/// Relationship between two placements, ordered by increasing distance.
enum class Proximity {
  kSameZone = 0,
  kDifferentZone = 1,   // same region, different availability zone
  kDifferentRegion = 2,
};

inline Proximity ClassifyProximity(const Placement& a, const Placement& b) {
  if (a.region != b.region) return Proximity::kDifferentRegion;
  if (a.zone != b.zone) return Proximity::kDifferentZone;
  return Proximity::kSameZone;
}

inline const char* ProximityToString(Proximity p) {
  switch (p) {
    case Proximity::kSameZone:
      return "same zone";
    case Proximity::kDifferentZone:
      return "different zone";
    case Proximity::kDifferentRegion:
      return "different region";
  }
  return "?";
}

/// The placements used throughout the paper's experiments.
/// (Figure captions place the master in us-west-1a; slaves are in us-west-1a,
/// us-west-1b, or eu-west-1a depending on the configuration.)
inline Placement MasterPlacement() { return {"us-west", "us-west-1a"}; }
inline Placement SameZonePlacement() { return {"us-west", "us-west-1a"}; }
inline Placement DifferentZonePlacement() { return {"us-west", "us-west-1b"}; }
inline Placement DifferentRegionPlacement() { return {"eu-west", "eu-west-1a"}; }

}  // namespace clouddb::cloud

#endif  // CLOUDDB_CLOUD_PLACEMENT_H_
