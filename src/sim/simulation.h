#ifndef CLOUDDB_SIM_SIMULATION_H_
#define CLOUDDB_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time_types.h"

namespace clouddb::sim {

/// Discrete-event simulation kernel.
///
/// The entire system (clients, proxy, database nodes, network, NTP) runs as
/// callbacks on a single event queue, which makes every experiment
/// deterministic: events at equal timestamps fire in scheduling order
/// (FIFO tie-break by sequence number). There are no real threads; simulated
/// "threads" (e.g. a slave's SQL apply thread) are event-driven state
/// machines.
class Simulation {
 public:
  using Callback = std::function<void()>;

  /// Handle to a scheduled event; allows cancellation (e.g. timeouts).
  class EventHandle {
   public:
    EventHandle() = default;

    /// Cancels the event if it has not fired yet. Idempotent.
    void Cancel() {
      if (cancelled_) *cancelled_ = true;
    }
    bool valid() const { return cancelled_ != nullptr; }

   private:
    friend class Simulation;
    explicit EventHandle(std::shared_ptr<bool> cancelled)
        : cancelled_(std::move(cancelled)) {}
    std::shared_ptr<bool> cancelled_;
  };

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time in microseconds.
  SimTime Now() const { return now_; }

  /// Schedules `cb` to run at absolute simulated time `when` (clamped to
  /// `Now()` if in the past). Returns a cancellable handle.
  EventHandle ScheduleAt(SimTime when, Callback cb);

  /// Schedules `cb` to run `delay` microseconds from now.
  EventHandle ScheduleAfter(SimDuration delay, Callback cb) {
    return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  /// Runs until the queue is empty.
  void Run();

  /// Runs until the queue is empty or simulated time would exceed `deadline`.
  /// Events at exactly `deadline` are executed. Afterwards `Now()` is
  /// min(deadline, time of last executed event) — call `FastForwardTo` to pin
  /// the clock at the deadline if needed.
  void RunUntil(SimTime deadline);

  /// Advances `Now()` to `t` without executing events (requires that no
  /// pending event is earlier than `t`; used by tests).
  void FastForwardTo(SimTime t);

  /// Number of events executed so far.
  int64_t events_executed() const { return events_executed_; }
  /// Number of events currently pending.
  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    int64_t seq;
    Callback cb;
    std::shared_ptr<bool> cancelled;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops and executes the earliest event. Returns false if queue empty.
  bool Step();

  SimTime now_ = 0;
  int64_t next_seq_ = 0;
  int64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace clouddb::sim

#endif  // CLOUDDB_SIM_SIMULATION_H_
