#ifndef CLOUDDB_SIM_SIMULATION_H_
#define CLOUDDB_SIM_SIMULATION_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/time_types.h"
#include "sim/event_callback.h"

namespace clouddb::sim {

/// Discrete-event simulation kernel.
///
/// The entire system (clients, proxy, database nodes, network, NTP) runs as
/// callbacks on a single event queue, which makes every experiment
/// deterministic: events at equal timestamps fire in scheduling order
/// (FIFO tie-break by sequence number). There are no real threads; simulated
/// "threads" (e.g. a slave's SQL apply thread) are event-driven state
/// machines.
///
/// Storage layout: event callbacks live in a slab of generation-tagged
/// records (`records_`, slot-indexed, recycled through a free list) and the
/// time-ordered queue is a binary heap of plain {when, seq, slot, gen}
/// entries. Cancellation bumps the record's generation — O(1) and
/// allocation-free — leaving a stale heap entry (tombstone) that is skipped
/// when popped, or swept early if tombstones come to dominate the heap.
class Simulation {
 public:
  using Callback = EventCallback;

  /// Handle to a scheduled one-shot event; allows cancellation (e.g.
  /// timeouts). Copyable; must not outlive the Simulation.
  class EventHandle {
   public:
    EventHandle() = default;

    /// Cancels the event if it has not fired yet. Idempotent; O(1).
    void Cancel() {
      if (sim_ != nullptr) sim_->CancelEvent(slot_, gen_);
    }
    bool valid() const { return sim_ != nullptr; }

   private:
    friend class Simulation;
    EventHandle(Simulation* sim, uint32_t slot, uint32_t gen)
        : sim_(sim), slot_(slot), gen_(gen) {}
    Simulation* sim_ = nullptr;
    uint32_t slot_ = 0;
    uint32_t gen_ = 0;
  };

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time in microseconds.
  SimTime Now() const { return now_; }

  /// Schedules `cb` to run at absolute simulated time `when` (clamped to
  /// `Now()` if in the past). Returns a cancellable handle.
  EventHandle ScheduleAt(SimTime when, Callback cb);

  /// Schedules `cb` to run `delay` microseconds from now.
  EventHandle ScheduleAfter(SimDuration delay, Callback cb) {
    return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  /// Runs until the queue is empty.
  void Run();

  /// Runs until the queue is empty or simulated time would exceed `deadline`.
  /// Events at exactly `deadline` are executed, and afterwards `Now()` is
  /// pinned to `deadline` even if the last event fired earlier.
  void RunUntil(SimTime deadline);

  /// Advances `Now()` to `t` without executing events (requires that no
  /// live pending event is earlier than `t`; used by tests).
  void FastForwardTo(SimTime t);

  /// Number of events executed so far.
  int64_t events_executed() const { return events_executed_; }
  /// Number of live (not cancelled) events currently pending.
  size_t pending_events() const { return live_pending_; }
  /// Cancelled events whose heap entries (tombstones) have not been popped or
  /// compacted away yet. Observability only; does not affect execution.
  size_t cancelled_pending() const { return cancelled_pending_; }

 private:
  friend class Timer;
  friend class PeriodicTimer;

  /// One slab slot. `gen` changes whenever the armed occurrence identified by
  /// {slot, gen} is consumed (fired or cancelled), so stale heap entries and
  /// stale EventHandles can never touch a successor event in the same slot.
  struct EventRecord {
    Callback cb;
    SimDuration period = 0;  // > 0: kernel re-arms in place (PeriodicTimer)
    uint32_t gen = 0;
    bool armed = false;
    bool persistent = false;  // slot owned by a Timer/PeriodicTimer
  };
  struct HeapEntry {
    SimTime when;
    int64_t seq;
    uint32_t slot;
    uint32_t gen;
  };
  /// Min-heap order: earliest `when`, then FIFO by `seq`.
  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  // Hand-rolled binary heap (min at heap_[0]). Manual sift primitives let
  // the periodic-timer fire path re-arm by overwriting the top entry and
  // sifting once, instead of a pop_heap + push_heap round trip.
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void PopTop();

  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot) { free_slots_.push_back(slot); }
  /// Pushes a heap entry for `slot`'s current generation.
  void Push(uint32_t slot, SimTime when);
  /// O(1) cancel of the one-shot occurrence {slot, gen}; no-op if stale.
  void CancelEvent(uint32_t slot, uint32_t gen);
  /// Pops tombstones off the heap top. Returns false iff the heap is empty
  /// (post: heap empty, or front() is a live event).
  bool PruneStale();
  /// Sweeps all tombstones out of the heap once they dominate it.
  void MaybeCompact();
  /// Pops and executes the earliest live event. Returns false if none.
  bool Step();

  // Timer plumbing (persistent slots owned by Timer/PeriodicTimer).
  uint32_t BindTimerSlot(Callback cb, SimDuration period);
  void RebindTimerSlot(uint32_t slot, Callback cb, SimDuration period);
  void ArmTimer(uint32_t slot, SimTime when);
  void DisarmTimer(uint32_t slot);
  void ReleaseTimerSlot(uint32_t slot);
  bool TimerArmed(uint32_t slot) const { return records_[slot].armed; }
  SimDuration TimerPeriod(uint32_t slot) const { return records_[slot].period; }
  void SetTimerPeriod(uint32_t slot, SimDuration period) {
    records_[slot].period = period;
  }

  SimTime now_ = 0;
  int64_t next_seq_ = 0;
  int64_t events_executed_ = 0;
  size_t live_pending_ = 0;
  size_t cancelled_pending_ = 0;
  // std::deque: references to records stay valid while the slab grows, so a
  // persistent slot's callback can run in place even if it schedules events.
  std::deque<EventRecord> records_;
  std::vector<uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;
};

/// Re-armable one-shot timer bound to a single slab slot: the callback is
/// stored once and every (re-)arm or cancel is O(1) and allocation-free. Use
/// for recurring work whose next deadline is recomputed per occurrence
/// (retry backoff, think times, timeout guards); for a fixed cadence use
/// PeriodicTimer. Must not outlive the Simulation it is bound to, and
/// Bind must not be called from the timer's own callback (re-arming is fine).
class Timer {
 public:
  Timer() = default;
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() {
    if (sim_ != nullptr) sim_->ReleaseTimerSlot(slot_);
  }

  /// Stores `cb` in the kernel slab. Rebinding (while not inside the timer's
  /// own callback) replaces the callback and cancels any pending occurrence.
  void Bind(Simulation* sim, Simulation::Callback cb);
  bool bound() const { return sim_ != nullptr; }

  /// Arms (or re-arms, superseding a pending occurrence) at absolute time
  /// `when`, clamped to Now(). Requires Bind first.
  void ArmAt(SimTime when);
  /// Arms (or re-arms) `delay` from now; negative delays clamp to 0.
  void ArmAfter(SimDuration delay);
  /// Cancels the pending occurrence, if any. Idempotent; O(1).
  void Cancel();
  bool armed() const { return sim_ != nullptr && sim_->TimerArmed(slot_); }

 private:
  Simulation* sim_ = nullptr;
  uint32_t slot_ = 0;
};

/// Fixed-cadence timer: fires every `period` starting at Start()+period. The
/// kernel re-arms the slot in place *before* invoking the callback, so a tick
/// never constructs a closure and the callback may call Stop()/set_period()
/// on its own timer. Start must not be called from the timer's own callback;
/// like Timer, it must not outlive its Simulation.
class PeriodicTimer {
 public:
  PeriodicTimer() = default;
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;
  ~PeriodicTimer() {
    if (sim_ != nullptr) sim_->ReleaseTimerSlot(slot_);
  }

  /// Binds (or rebinds) the callback and schedules the first tick at
  /// Now() + period. `period` must be > 0.
  void Start(Simulation* sim, SimDuration period, Simulation::Callback cb);
  /// Stops ticking; Start may be called again later. Safe from the timer's
  /// own callback (cancels the already re-armed next tick).
  void Stop();
  bool running() const { return sim_ != nullptr && sim_->TimerArmed(slot_); }

  /// Changes the cadence used when the *next* tick re-arms; the already
  /// scheduled tick keeps its deadline. Safe from the timer's own callback.
  void set_period(SimDuration period);
  SimDuration period() const;

 private:
  Simulation* sim_ = nullptr;
  uint32_t slot_ = 0;
};

}  // namespace clouddb::sim

#endif  // CLOUDDB_SIM_SIMULATION_H_
