#include "sim/cpu_scheduler.h"
#include "common/time_types.h"
#include "sim/simulation.h"

#include <cassert>
#include <utility>

namespace clouddb::sim {

CpuScheduler::CpuScheduler(Simulation* sim, int num_cores, double speed_factor)
    : sim_(sim), num_cores_(num_cores), speed_factor_(speed_factor) {
  assert(sim != nullptr);
  assert(num_cores >= 1);
  assert(speed_factor > 0.0);
}

CpuScheduler::~CpuScheduler() {
  for (Simulation::EventHandle& handle : inflight_) handle.Cancel();
}

void CpuScheduler::Submit(SimDuration cost, Callback done) {
  assert(cost >= 0);
  if (!frozen_ && busy_cores_ < num_cores_) {
    StartJob(Job{cost, std::move(done)});
  } else {
    queue_.push_back(Job{cost, std::move(done)});
  }
}

void CpuScheduler::Freeze() { frozen_ = true; }

void CpuScheduler::Thaw() {
  frozen_ = false;
  while (busy_cores_ < num_cores_ && !queue_.empty()) {
    Job next = std::move(queue_.front());
    queue_.pop_front();
    StartJob(std::move(next));
  }
}

void CpuScheduler::Halt() {
  frozen_ = true;
  ++epoch_;  // completions of in-flight jobs become no-ops
  jobs_dropped_ += busy_cores_ + static_cast<int64_t>(queue_.size());
  busy_cores_ = 0;
  queue_.clear();
}

void CpuScheduler::SetSpeedFactor(double factor) {
  assert(factor > 0.0);
  speed_factor_ = factor;
}

void CpuScheduler::StartJob(Job job) {
  ++busy_cores_;
  SimDuration service =
      static_cast<SimDuration>(static_cast<double>(job.cost) / speed_factor_);
  if (service < 1) service = 1;  // every job takes at least one tick
  auto done = std::move(job.done);
  int64_t epoch = epoch_;
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = inflight_.size();
    inflight_.emplace_back();
  }
  inflight_[slot] = sim_->ScheduleAfter(
      service, [this, epoch, service, slot, done = std::move(done)]() mutable {
        inflight_[slot] = Simulation::EventHandle();
        free_slots_.push_back(slot);
        OnJobDone(epoch, service, std::move(done));
      });
}

void CpuScheduler::OnJobDone(int64_t epoch, SimDuration service_time,
                             Callback done) {
  if (epoch != epoch_) return;  // the job died in a Halt()
  --busy_cores_;
  busy_micros_ += service_time;
  ++jobs_completed_;
  if (!frozen_ && !queue_.empty()) {
    Job next = std::move(queue_.front());
    queue_.pop_front();
    StartJob(std::move(next));
  }
  if (done) done();
}

}  // namespace clouddb::sim
