#include "sim/cpu_scheduler.h"

#include <cassert>
#include <utility>

namespace clouddb::sim {

CpuScheduler::CpuScheduler(Simulation* sim, int num_cores, double speed_factor)
    : sim_(sim), num_cores_(num_cores), speed_factor_(speed_factor) {
  assert(sim != nullptr);
  assert(num_cores >= 1);
  assert(speed_factor > 0.0);
}

void CpuScheduler::Submit(SimDuration cost, Callback done) {
  assert(cost >= 0);
  if (busy_cores_ < num_cores_) {
    StartJob(Job{cost, std::move(done)});
  } else {
    queue_.push_back(Job{cost, std::move(done)});
  }
}

void CpuScheduler::StartJob(Job job) {
  ++busy_cores_;
  SimDuration service =
      static_cast<SimDuration>(static_cast<double>(job.cost) / speed_factor_);
  if (service < 1) service = 1;  // every job takes at least one tick
  auto done = std::move(job.done);
  sim_->ScheduleAfter(service, [this, service, done = std::move(done)]() mutable {
    OnJobDone(service, std::move(done));
  });
}

void CpuScheduler::OnJobDone(SimDuration service_time, Callback done) {
  --busy_cores_;
  busy_micros_ += service_time;
  ++jobs_completed_;
  if (!queue_.empty()) {
    Job next = std::move(queue_.front());
    queue_.pop_front();
    StartJob(std::move(next));
  }
  if (done) done();
}

}  // namespace clouddb::sim
