#ifndef CLOUDDB_SIM_LOCAL_CLOCK_H_
#define CLOUDDB_SIM_LOCAL_CLOCK_H_

#include <cstdint>

#include "common/time_types.h"

namespace clouddb::sim {

/// A per-instance wall clock that can disagree with true (simulated) time.
///
/// Physical hosts differ in their initial clock setting and subsequently
/// drift; the paper (§IV-B.1) observes EC2 instances drifting tens of
/// milliseconds apart within 20 minutes unless NTP synchronizes them every
/// second. This class models a clock as
///
///   local(t) = anchor_local + (t - anchor_sim) * (1 + drift_ppm * 1e-6)
///
/// NTP adjustments *step* the clock by resetting the anchor.
class LocalClock {
 public:
  /// Creates a clock that reads `initial_offset` at simulated time 0 and
  /// drifts at `drift_ppm` parts-per-million relative to true time.
  LocalClock(SimDuration initial_offset, double drift_ppm)
      : anchor_sim_(0), anchor_local_(initial_offset), drift_ppm_(drift_ppm) {}

  /// Local wall-clock reading at simulated instant `sim_now`, in µs.
  /// This is the µs-resolution time/date function of the paper's §III-A
  /// (their user-defined replacement for MySQL's 1-second NOW()).
  int64_t NowMicros(SimTime sim_now) const {
    double elapsed = static_cast<double>(sim_now - anchor_sim_);
    return anchor_local_ +
           static_cast<int64_t>(elapsed * (1.0 + drift_ppm_ * 1e-6));
  }

  /// Steps the clock so that it reads `new_local` at `sim_now` (what an NTP
  /// client does after measuring the offset to a time server).
  void StepTo(SimTime sim_now, int64_t new_local) {
    anchor_sim_ = sim_now;
    anchor_local_ = new_local;
  }

  /// Steps the clock by `delta` at `sim_now` (clock-step fault: a bad NTP
  /// source, a VM resume after live migration, a leap adjustment). Future
  /// readings are shifted by `delta`; drift continues unchanged.
  void StepBy(SimTime sim_now, SimDuration delta) {
    StepTo(sim_now, NowMicros(sim_now) + delta);
  }

  /// Offset from true time at `sim_now` (local - true), µs.
  int64_t OffsetAt(SimTime sim_now) const { return NowMicros(sim_now) - sim_now; }

  double drift_ppm() const { return drift_ppm_; }
  /// Changes the drift rate from `sim_now` on, re-anchoring first so
  /// readings at earlier instants are unaffected.
  void SetDriftPpm(SimTime sim_now, double ppm) {
    StepTo(sim_now, NowMicros(sim_now));
    drift_ppm_ = ppm;
  }
  /// Legacy setter used by setup code at t = 0: changes the rate without
  /// re-anchoring (equivalent to SetDriftPpm(0, ppm) when nothing has been
  /// scheduled yet).
  void set_drift_ppm(double ppm) { drift_ppm_ = ppm; }

 private:
  SimTime anchor_sim_;
  int64_t anchor_local_;
  double drift_ppm_;
};

}  // namespace clouddb::sim

#endif  // CLOUDDB_SIM_LOCAL_CLOCK_H_
