#include "sim/simulation.h"
#include "common/time_types.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace clouddb::sim {

namespace {
// Tombstone sweep threshold: compact only once stale entries are both
// numerous in absolute terms and the majority of the heap, so steady-state
// workloads (few cancels) never pay the O(n) sweep.
constexpr size_t kCompactMinTombstones = 64;
}  // namespace

uint32_t Simulation::AllocSlot() {
  if (!free_slots_.empty()) {
    uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  records_.emplace_back();
  return static_cast<uint32_t>(records_.size() - 1);
}

void Simulation::SiftUp(size_t i) {
  HeapEntry e = heap_[i];
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (!Earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulation::SiftDown(size_t i) {
  HeapEntry e = heap_[i];
  const size_t n = heap_.size();
  for (;;) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && Earlier(heap_[child + 1], heap_[child])) ++child;
    if (!Earlier(heap_[child], e)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = e;
}

void Simulation::PopTop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

void Simulation::Push(uint32_t slot, SimTime when) {
  heap_.push_back(HeapEntry{when, next_seq_++, slot, records_[slot].gen});
  SiftUp(heap_.size() - 1);
}

Simulation::EventHandle Simulation::ScheduleAt(SimTime when, Callback cb) {
  if (when < now_) when = now_;
  uint32_t slot = AllocSlot();
  EventRecord& rec = records_[slot];
  rec.cb = std::move(cb);
  rec.period = 0;
  rec.armed = true;
  rec.persistent = false;
  ++live_pending_;
  Push(slot, when);
  return EventHandle(this, slot, rec.gen);
}

void Simulation::CancelEvent(uint32_t slot, uint32_t gen) {
  EventRecord& rec = records_[slot];
  if (rec.gen != gen || !rec.armed) return;  // already fired or cancelled
  ++rec.gen;  // orphans the heap entry and any copied handles
  rec.armed = false;
  rec.cb.Reset();  // release captured resources eagerly
  --live_pending_;
  ++cancelled_pending_;
  if (!rec.persistent) FreeSlot(slot);
  MaybeCompact();
}

bool Simulation::PruneStale() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (records_[top.slot].gen == top.gen) return true;
    PopTop();
    --cancelled_pending_;
  }
  return false;
}

void Simulation::MaybeCompact() {
  if (cancelled_pending_ < kCompactMinTombstones ||
      cancelled_pending_ * 2 < heap_.size()) {
    return;
  }
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const HeapEntry& e) {
                               return records_[e.slot].gen != e.gen;
                             }),
              heap_.end());
  // Floyd heapify: sift interior nodes down, deepest first.
  for (size_t i = heap_.size() / 2; i-- > 0;) SiftDown(i);
  cancelled_pending_ = 0;
}

bool Simulation::Step() {
  if (!PruneStale()) return false;
  const HeapEntry top = heap_.front();
  EventRecord& rec = records_[top.slot];
  assert(rec.armed && top.when >= now_);
  now_ = top.when;
  ++events_executed_;
  ++rec.gen;  // consume this occurrence before the callback runs
  if (rec.persistent && rec.period > 0) {
    // Periodic fast path: re-arm by overwriting the just-fired top entry —
    // one sift instead of pop + push. Re-arming *before* the callback runs
    // means the callback observes the next tick as pending and may Stop()
    // or set_period() it; `rec.armed` and `live_pending_` are unchanged
    // (one occurrence fired, one armed). `rec` stays valid across the
    // callback's own scheduling because records_ is a deque.
    heap_.front() = HeapEntry{now_ + rec.period, next_seq_++, top.slot,
                              rec.gen};
    SiftDown(0);
    rec.cb();
  } else if (rec.persistent) {
    // One-shot Timer slot: disarm, then invoke in place.
    rec.armed = false;
    --live_pending_;
    PopTop();
    rec.cb();
  } else {
    rec.armed = false;
    --live_pending_;
    PopTop();
    // Move the callback out and recycle the slot before invoking, so the
    // callback can schedule into the just-freed slot without aliasing.
    Callback cb = std::move(rec.cb);
    FreeSlot(top.slot);
    cb();
  }
  return true;
}

void Simulation::Run() {
  while (Step()) {
  }
}

void Simulation::RunUntil(SimTime deadline) {
  while (PruneStale() && heap_.front().when <= deadline) Step();
  if (now_ < deadline) now_ = deadline;
}

void Simulation::FastForwardTo(SimTime t) {
  PruneStale();
  assert(heap_.empty() || heap_.front().when >= t);
  if (t > now_) now_ = t;
}

uint32_t Simulation::BindTimerSlot(Callback cb, SimDuration period) {
  uint32_t slot = AllocSlot();
  EventRecord& rec = records_[slot];
  rec.cb = std::move(cb);
  rec.period = period;
  rec.armed = false;
  rec.persistent = true;
  return slot;
}

void Simulation::RebindTimerSlot(uint32_t slot, Callback cb,
                                 SimDuration period) {
  DisarmTimer(slot);
  EventRecord& rec = records_[slot];
  rec.cb = std::move(cb);
  rec.period = period;
}

void Simulation::ArmTimer(uint32_t slot, SimTime when) {
  EventRecord& rec = records_[slot];
  if (rec.armed) {  // supersede the pending occurrence
    ++rec.gen;
    --live_pending_;
    ++cancelled_pending_;
  }
  rec.armed = true;
  ++live_pending_;
  Push(slot, when < now_ ? now_ : when);
}

void Simulation::DisarmTimer(uint32_t slot) {
  EventRecord& rec = records_[slot];
  if (!rec.armed) return;
  ++rec.gen;
  rec.armed = false;
  --live_pending_;
  ++cancelled_pending_;
  MaybeCompact();
}

void Simulation::ReleaseTimerSlot(uint32_t slot) {
  DisarmTimer(slot);
  EventRecord& rec = records_[slot];
  rec.cb.Reset();
  rec.period = 0;
  rec.persistent = false;
  ++rec.gen;  // orphan any stale handles/entries before the slot is recycled
  FreeSlot(slot);
}

void Timer::Bind(Simulation* sim, Simulation::Callback cb) {
  assert(sim != nullptr);
  if (sim_ == nullptr) {
    sim_ = sim;
    slot_ = sim_->BindTimerSlot(std::move(cb), 0);
  } else {
    assert(sim == sim_);
    sim_->RebindTimerSlot(slot_, std::move(cb), 0);
  }
}

void Timer::ArmAt(SimTime when) {
  assert(sim_ != nullptr);
  sim_->ArmTimer(slot_, when);
}

void Timer::ArmAfter(SimDuration delay) {
  assert(sim_ != nullptr);
  ArmAt(sim_->Now() + (delay < 0 ? 0 : delay));
}

void Timer::Cancel() {
  if (sim_ != nullptr) sim_->DisarmTimer(slot_);
}

void PeriodicTimer::Start(Simulation* sim, SimDuration period,
                          Simulation::Callback cb) {
  assert(sim != nullptr && period > 0);
  if (sim_ == nullptr) {
    sim_ = sim;
    slot_ = sim_->BindTimerSlot(std::move(cb), period);
  } else {
    assert(sim == sim_);
    sim_->RebindTimerSlot(slot_, std::move(cb), period);
  }
  sim_->ArmTimer(slot_, sim_->Now() + period);
}

void PeriodicTimer::Stop() {
  if (sim_ != nullptr) sim_->DisarmTimer(slot_);
}

void PeriodicTimer::set_period(SimDuration period) {
  assert(sim_ != nullptr && period > 0);
  sim_->SetTimerPeriod(slot_, period);
}

SimDuration PeriodicTimer::period() const {
  return sim_ != nullptr ? sim_->TimerPeriod(slot_) : 0;
}

}  // namespace clouddb::sim
