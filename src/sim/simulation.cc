#include "sim/simulation.h"

#include <cassert>
#include <utility>

namespace clouddb::sim {

Simulation::EventHandle Simulation::ScheduleAt(SimTime when, Callback cb) {
  if (when < now_) when = now_;
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(cb), cancelled});
  return EventHandle(std::move(cancelled));
}

bool Simulation::Step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the callback is moved out via const_cast,
    // which is safe because the element is popped immediately afterwards.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (*ev.cancelled) continue;
    assert(ev.when >= now_);
    now_ = ev.when;
    ++events_executed_;
    ev.cb();
    return true;
  }
  return false;
}

void Simulation::Run() {
  while (Step()) {
  }
}

void Simulation::RunUntil(SimTime deadline) {
  while (!queue_.empty()) {
    // Skip cancelled events without advancing time.
    if (*queue_.top().cancelled) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) break;
    Step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulation::FastForwardTo(SimTime t) {
  assert(queue_.empty() || queue_.top().when >= t);
  if (t > now_) now_ = t;
}

}  // namespace clouddb::sim
