#ifndef CLOUDDB_SIM_EVENT_CALLBACK_H_
#define CLOUDDB_SIM_EVENT_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace clouddb::sim {

/// Move-only `void()` callable with inline storage for small targets.
///
/// Every event the kernel schedules stores its callback in one of these.
/// Targets up to kInlineSize bytes live inside the event record itself, so
/// steady-state ScheduleAfter/Timer re-arms do zero heap allocations; larger
/// targets fall back to a single heap allocation (like std::function).
/// kInlineSize is sized so the largest callback in the tree — the CPU
/// scheduler's job-completion lambda, which carries a std::function
/// continuation — still fits inline.
class EventCallback {
 public:
  static constexpr size_t kInlineSize = 64;

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  EventCallback(F&& f) {  // implicit, like std::function: callable wrapper
    using D = std::decay_t<F>;
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
    } else {
      heap_ = new D(std::forward<F>(f));
    }
    invoke_ = &InvokeImpl<D>;
    manage_ = &ManageImpl<D>;
  }

  EventCallback(EventCallback&& other) noexcept { MoveFrom(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { Reset(); }

  void operator()() { invoke_(Target()); }
  explicit operator bool() const { return invoke_ != nullptr; }

  /// Destroys the stored target (if any) and returns to the empty state.
  void Reset() {
    if (invoke_ != nullptr) manage_(Target(), nullptr, Op::kDestroy);
    invoke_ = nullptr;
    manage_ = nullptr;
    heap_ = nullptr;
  }

 private:
  enum class Op { kDestroy, kRelocate };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(void* self, void* dst, Op op);

  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static void InvokeImpl(void* target) {
    (*static_cast<D*>(target))();
  }

  template <typename D>
  static void ManageImpl(void* self, void* dst, Op op) {
    D* f = static_cast<D*>(self);
    if (op == Op::kDestroy) {
      if constexpr (FitsInline<D>()) {
        f->~D();
      } else {
        delete f;
      }
    } else {
      // Relocate an inline target into another EventCallback's buffer (heap
      // targets move by stealing the pointer and never take this path).
      ::new (dst) D(std::move(*f));
      f->~D();
    }
  }

  void* Target() { return heap_ != nullptr ? heap_ : static_cast<void*>(buf_); }

  void MoveFrom(EventCallback& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    heap_ = other.heap_;
    if (invoke_ != nullptr && heap_ == nullptr) {
      manage_(other.buf_, buf_, Op::kRelocate);
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
    other.heap_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  void* heap_ = nullptr;
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace clouddb::sim

#endif  // CLOUDDB_SIM_EVENT_CALLBACK_H_
