#ifndef CLOUDDB_SIM_CPU_SCHEDULER_H_
#define CLOUDDB_SIM_CPU_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/time_types.h"
#include "sim/simulation.h"

namespace clouddb::sim {

/// Models an instance's compute capacity as `num_cores` FCFS servers sharing
/// one run queue. A job with nominal cost `c` occupies a core for
/// `c / speed_factor` simulated microseconds; jobs beyond core capacity wait
/// in FIFO order. This is what produces the saturation behaviour at the heart
/// of the paper: when offered load exceeds capacity the queue — and hence
/// response time and replication delay — grows.
class CpuScheduler {
 public:
  using Callback = std::function<void()>;

  /// `speed_factor` expresses both the instance type's capacity and the
  /// instance-to-instance performance variation (paper §IV-A; Schad et al.
  /// measured a CoV of 0.21 for small instances).
  CpuScheduler(Simulation* sim, int num_cores, double speed_factor);

  /// Cancels every in-flight completion event: the scheduled lambdas capture
  /// `this` and must not fire into a destroyed scheduler.
  ~CpuScheduler();

  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;

  /// Enqueues a job with nominal CPU cost `cost` (µs at speed 1.0); `done`
  /// fires when the job completes. Jobs run in submission order.
  void Submit(SimDuration cost, Callback done);

  /// Straggler fault: stops dispatching jobs (a vCPU being stolen by the
  /// hypervisor, a stop-the-world migration pause). Jobs already on a core
  /// run to completion; everything else — including jobs submitted while
  /// frozen — waits in the queue until `Thaw()`.
  void Freeze();
  /// Ends a freeze and dispatches queued jobs onto free cores.
  void Thaw();
  bool frozen() const { return frozen_; }

  /// Power-loss fault: the instance crashed. Queued jobs are dropped and
  /// jobs currently on a core evaporate (their completion callbacks never
  /// fire — volatile state is gone). The scheduler stays frozen until
  /// `Thaw()`, which models the reboot completing.
  void Halt();

  /// Performance-degradation fault: changes the effective speed for jobs
  /// started from now on (jobs already on a core keep their old service
  /// time). Requires factor > 0.
  void SetSpeedFactor(double factor);

  /// Number of queued (not yet running) jobs.
  size_t QueueLength() const { return queue_.size(); }
  /// Number of cores currently executing a job.
  int BusyCores() const { return busy_cores_; }
  bool Idle() const { return busy_cores_ == 0 && queue_.empty(); }

  /// Total core-microseconds of completed work (for utilization sampling:
  /// utilization over [t1,t2] = delta(busy) / ((t2-t1) * cores)).
  int64_t CumulativeBusyMicros() const { return busy_micros_; }
  int64_t JobsCompleted() const { return jobs_completed_; }
  /// Jobs destroyed by `Halt()` (queued and in-flight).
  int64_t JobsDropped() const { return jobs_dropped_; }

  int num_cores() const { return num_cores_; }
  double speed_factor() const { return speed_factor_; }

 private:
  struct Job {
    SimDuration cost;
    Callback done;
  };

  void StartJob(Job job);
  void OnJobDone(int64_t epoch, SimDuration service_time, Callback done);

  Simulation* sim_;
  int num_cores_;
  double speed_factor_;
  int busy_cores_ = 0;
  bool frozen_ = false;
  /// Bumped by Halt(); completions scheduled under an older epoch are
  /// ignored (the job they belong to died with the instance).
  int64_t epoch_ = 0;
  int64_t busy_micros_ = 0;
  int64_t jobs_completed_ = 0;
  int64_t jobs_dropped_ = 0;
  std::deque<Job> queue_;
  /// One kernel handle per in-flight completion so teardown can cancel it.
  /// Slots are recycled as completions fire, so the vector stays bounded by
  /// the peak number of concurrently busy cores, not by total jobs run.
  std::vector<Simulation::EventHandle> inflight_;
  std::vector<size_t> free_slots_;
};

}  // namespace clouddb::sim

#endif  // CLOUDDB_SIM_CPU_SCHEDULER_H_
