#include "net/network.h"
#include "common/time_types.h"
#include "sim/simulation.h"

#include <cassert>
#include <utility>

namespace clouddb::net {

StaticLatencyModel::StaticLatencyModel(
    std::vector<std::vector<SimDuration>> matrix)
    : matrix_(std::move(matrix)) {
  for (const auto& row : matrix_) {
    assert(row.size() == matrix_.size());
    (void)row;
  }
}

SimDuration StaticLatencyModel::SampleOneWay(NodeId from, NodeId to) {
  assert(from >= 0 && static_cast<size_t>(from) < matrix_.size());
  assert(to >= 0 && static_cast<size_t>(to) < matrix_.size());
  return matrix_[static_cast<size_t>(from)][static_cast<size_t>(to)];
}

Network::Network(sim::Simulation* sim, LatencyModel* latency)
    : sim_(sim), latency_(latency) {
  assert(sim != nullptr && latency != nullptr);
}

void Network::Send(NodeId from, NodeId to, int64_t size_bytes,
                   std::function<void()> on_delivery) {
  ++messages_sent_;
  bytes_sent_ += size_bytes;
  if (IsBlocked(from, to)) {
    ++messages_dropped_;
    return;
  }
  const LinkFaultState* fault = FindFault(from, to);
  if (fault != nullptr && fault->loss_probability > 0.0 &&
      loss_rng_.Bernoulli(fault->loss_probability)) {
    ++messages_dropped_;
    return;
  }
  SimDuration delay = latency_->SampleOneWay(from, to);
  assert(delay >= 0);
  if (fault != nullptr) delay += fault->extra_latency;
  SimTime arrival = sim_->Now() + delay;
  SimTime& last = last_arrival_[{from, to}];
  if (arrival <= last) arrival = last + 1;  // FIFO per path, like TCP
  last = arrival;
  sim_->ScheduleAt(arrival, std::move(on_delivery));
}

const LinkFaultState* Network::FindFault(NodeId from, NodeId to) const {
  auto it = link_faults_.find({from, to});
  return it == link_faults_.end() ? nullptr : &it->second;
}

void Network::UpdateFault(NodeId from, NodeId to,
                          const std::function<void(LinkFaultState*)>& mutate) {
  auto key = std::make_pair(from, to);
  LinkFaultState& state = link_faults_[key];
  mutate(&state);
  if (!state.down && state.extra_latency == 0 &&
      state.loss_probability == 0.0) {
    link_faults_.erase(key);
  }
}

void Network::SetLinkDown(NodeId from, NodeId to, bool down) {
  UpdateFault(from, to, [down](LinkFaultState* s) { s->down = down; });
}

void Network::SetLinkExtraLatency(NodeId from, NodeId to, SimDuration extra) {
  assert(extra >= 0);
  UpdateFault(from, to,
              [extra](LinkFaultState* s) { s->extra_latency = extra; });
}

void Network::SetLinkLossProbability(NodeId from, NodeId to, double p) {
  assert(p >= 0.0 && p <= 1.0);
  UpdateFault(from, to, [p](LinkFaultState* s) { s->loss_probability = p; });
}

void Network::SetNodeIsolated(NodeId node, bool isolated) {
  if (isolated) {
    isolated_.insert(node);
  } else {
    isolated_.erase(node);
  }
}

bool Network::IsBlocked(NodeId from, NodeId to) const {
  if (from != to &&
      (isolated_.count(from) != 0 || isolated_.count(to) != 0)) {
    return true;
  }
  const LinkFaultState* fault = FindFault(from, to);
  return fault != nullptr && fault->down;
}

void Network::Ping(NodeId from, NodeId to,
                   std::function<void(SimDuration)> on_reply) {
  SimTime sent_at = sim_->Now();
  Send(from, to, /*size_bytes=*/64, [this, from, to, sent_at,
                                     on_reply = std::move(on_reply)]() mutable {
    Send(to, from, /*size_bytes=*/64,
         [this, sent_at, on_reply = std::move(on_reply)]() {
           on_reply(sim_->Now() - sent_at);
         });
  });
}

PingProbe::PingProbe(sim::Simulation* sim, Network* network, NodeId from,
                     NodeId to)
    : sim_(sim), network_(network), from_(from), to_(to) {}

void PingProbe::Start(SimDuration interval, int count) {
  interval_ = interval;
  remaining_ = count;
  half_rtt_ms_.reserve(static_cast<size_t>(count));
  SendOne();
  if (remaining_ > 0) {
    pinger_.Start(sim_, interval_, [this] { SendOne(); });
  }
}

void PingProbe::SendOne() {
  if (remaining_ <= 0) return;
  --remaining_;
  network_->Ping(from_, to_, [this](SimDuration rtt) {
    half_rtt_ms_.push_back(ToMillis(rtt) / 2.0);
  });
  // Stop from the timer's own tick cancels the already re-armed next ping.
  if (remaining_ == 0) pinger_.Stop();
}

}  // namespace clouddb::net
