#ifndef CLOUDDB_NET_NETWORK_H_
#define CLOUDDB_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/time_types.h"
#include "sim/simulation.h"

namespace clouddb::net {

/// Identifies an endpoint (an instance's NIC) on the simulated network.
using NodeId = int32_t;

inline constexpr NodeId kInvalidNode = -1;

/// Produces one-way packet delays between endpoints. Implementations may be
/// stochastic (each call samples a fresh delay) — the jitter is what makes
/// the paper's ping measurements fluctuate.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// One-way delay for a message sent now from `from` to `to`, in µs.
  /// Must be >= 0. Loopback (from == to) should be ~0.
  virtual SimDuration SampleOneWay(NodeId from, NodeId to) = 0;
};

/// Fixed-matrix latency model (no jitter); handy for tests.
class StaticLatencyModel : public LatencyModel {
 public:
  /// `matrix[from][to]` is the one-way delay in µs. Must be square.
  explicit StaticLatencyModel(std::vector<std::vector<SimDuration>> matrix);

  SimDuration SampleOneWay(NodeId from, NodeId to) override;

 private:
  std::vector<std::vector<SimDuration>> matrix_;
};

/// Fault state of one directed link, controlled by the fault-injection
/// layer (clouddb::fault). All fields compose: a link can simultaneously be
/// lossy and slow.
struct LinkFaultState {
  /// Hard partition: every message on this link is dropped at send time.
  bool down = false;
  /// Added to the sampled one-way delay (latency-spike window).
  SimDuration extra_latency = 0;
  /// Probability in [0, 1] that a message is dropped (grey failure).
  double loss_probability = 0.0;
};

/// Message-passing network: delivers callbacks after a sampled one-way delay.
/// Bandwidth is not modelled (the paper's workload is latency- and
/// CPU-bound, not bandwidth-bound); message size only feeds statistics.
///
/// Delivery is FIFO per directed (from, to) pair: jitter never reorders two
/// messages on the same path. This models the TCP streams everything in the
/// real deployment runs over — in particular the binlog stream, whose events
/// *must* arrive in order (an INSERT overtaking its CREATE TABLE would stop
/// a slave's SQL thread).
///
/// Link faults (partition, latency spike, packet loss, node isolation) are
/// evaluated at *send* time: a partition raised after a message left does
/// not claw the message back, exactly like pulling a cable does not destroy
/// packets already in flight.
class Network {
 public:
  Network(sim::Simulation* sim, LatencyModel* latency);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Delivers `on_delivery` at the destination after a sampled one-way
  /// delay, no earlier than any previously sent (from, to) message.
  /// Messages on a downed/isolated link, or losing the loss-probability
  /// draw, are dropped silently — senders discover it via their own
  /// timeouts, as over real TCP.
  void Send(NodeId from, NodeId to, int64_t size_bytes,
            std::function<void()> on_delivery);

  /// ICMP-echo-style round trip: samples both directions and invokes
  /// `on_reply(rtt_us)` after the full round trip.
  void Ping(NodeId from, NodeId to, std::function<void(SimDuration)> on_reply);

  // --- Link-fault controls (see clouddb::fault::FaultInjector) ---

  /// Raises/heals a hard partition of the directed link from->to.
  void SetLinkDown(NodeId from, NodeId to, bool down);
  /// Adds `extra` µs to every delay sampled on from->to (0 = heal).
  void SetLinkExtraLatency(NodeId from, NodeId to, SimDuration extra);
  /// Drops messages on from->to with probability `p` in [0, 1] (0 = heal).
  /// Draws come from a dedicated deterministic stream (`SeedLossRng`), so
  /// enabling loss on one link never perturbs latency sampling elsewhere.
  void SetLinkLossProbability(NodeId from, NodeId to, double p);
  /// Cuts the node off from every other endpoint in both directions
  /// (instance-level network failure). Loopback is unaffected.
  void SetNodeIsolated(NodeId node, bool isolated);
  void SeedLossRng(uint64_t seed) { loss_rng_ = Rng(seed); }

  /// True if a message sent now from->to would be dropped by a partition or
  /// isolation (loss probability not considered — that is per-message).
  bool IsBlocked(NodeId from, NodeId to) const;

  int64_t messages_sent() const { return messages_sent_; }
  int64_t bytes_sent() const { return bytes_sent_; }
  /// Messages dropped by partitions, isolation or packet loss.
  int64_t messages_dropped() const { return messages_dropped_; }

 private:
  const LinkFaultState* FindFault(NodeId from, NodeId to) const;
  /// Returns the state for the pair, pruning the entry when it resets to
  /// all-defaults (keeps the map from growing over long chaos runs).
  void UpdateFault(NodeId from, NodeId to,
                   const std::function<void(LinkFaultState*)>& mutate);

  sim::Simulation* sim_;
  LatencyModel* latency_;
  int64_t messages_sent_ = 0;
  int64_t bytes_sent_ = 0;
  int64_t messages_dropped_ = 0;
  /// Latest scheduled arrival per directed path, for FIFO enforcement.
  std::map<std::pair<NodeId, NodeId>, SimTime> last_arrival_;
  std::map<std::pair<NodeId, NodeId>, LinkFaultState> link_faults_;
  std::set<NodeId> isolated_;
  Rng loss_rng_{0x10552020};
};

/// Repeatedly pings a target and records half-RTT samples. Reproduces the
/// paper's §IV-B.2 measurement: "running ping command every second for a
/// 20-minute period" to estimate the ½ round-trip time per placement.
class PingProbe {
 public:
  PingProbe(sim::Simulation* sim, Network* network, NodeId from, NodeId to);

  /// Schedules `count` pings spaced `interval` apart, starting now.
  void Start(SimDuration interval, int count);

  /// Half-RTT samples collected so far, in milliseconds.
  const std::vector<double>& half_rtt_ms() const { return half_rtt_ms_; }

 private:
  void SendOne();

  sim::Simulation* sim_;
  Network* network_;
  NodeId from_;
  NodeId to_;
  SimDuration interval_ = 0;
  int remaining_ = 0;
  std::vector<double> half_rtt_ms_;
  sim::PeriodicTimer pinger_;
};

}  // namespace clouddb::net

#endif  // CLOUDDB_NET_NETWORK_H_
