#ifndef CLOUDDB_CLIENT_CONNECTION_POOL_H_
#define CLOUDDB_CLIENT_CONNECTION_POOL_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "client/connection.h"
#include "common/time_types.h"
#include "net/network.h"
#include "repl/db_node.h"
#include "sim/simulation.h"

namespace clouddb::client {

/// Pool behaviour knobs (a subset of Apache DBCP's).
struct ConnectionPoolOptions {
  /// Maximum simultaneously borrowed + idle connections.
  int max_active = 64;
  /// Borrowers beyond max_active wait FIFO (DBCP's WHEN_EXHAUSTED_BLOCK).
  /// There is no wait timeout: the simulated workload always returns
  /// connections.
};

/// DBCP-style connection pool to one database node. The paper adds exactly
/// this component so that "users ... reuse the connections that have been
/// released by other users ... to save the overhead of creating a new
/// connection for each operation"; here the saved overhead is the connection
/// handshake (one network round trip).
class ConnectionPool {
 public:
  using Ready = std::function<void(Connection*)>;

  ConnectionPool(sim::Simulation* sim, net::Network* network,
                 net::NodeId client_node, repl::DbNode* target,
                 const ConnectionPoolOptions& options);

  ConnectionPool(const ConnectionPool&) = delete;
  ConnectionPool& operator=(const ConnectionPool&) = delete;

  /// Obtains a connection: immediately if one is idle, after a handshake
  /// round trip if the pool can grow, otherwise when another borrower
  /// returns one.
  void Borrow(Ready ready);

  /// Returns a borrowed connection (must be idle, i.e. not mid-request).
  void Return(Connection* connection);

  /// Convenience: borrow, execute, and return around one statement.
  void Execute(const std::string& sql, SimDuration cpu_cost,
               Connection::Callback done);

  repl::DbNode* target() { return target_; }
  int total_connections() const { return total_created_; }
  size_t idle_count() const { return idle_.size(); }
  size_t waiting_borrowers() const { return waiters_.size(); }
  int64_t handshakes_performed() const { return handshakes_; }
  int64_t borrows_served() const { return borrows_; }

 private:
  void CreateConnection(Ready ready);

  sim::Simulation* sim_;
  net::Network* network_;
  net::NodeId client_node_;
  repl::DbNode* target_;
  ConnectionPoolOptions options_;
  std::vector<std::unique_ptr<Connection>> all_;
  std::deque<Connection*> idle_;
  std::deque<Ready> waiters_;
  int total_created_ = 0;
  int64_t next_conn_id_ = 1;
  int64_t handshakes_ = 0;
  int64_t borrows_ = 0;
};

}  // namespace clouddb::client

#endif  // CLOUDDB_CLIENT_CONNECTION_POOL_H_
