#ifndef CLOUDDB_CLIENT_RW_SPLIT_PROXY_H_
#define CLOUDDB_CLIENT_RW_SPLIT_PROXY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "client/connection_pool.h"
#include "db/statement_cache.h"
#include "metrics/metric_registry.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "client/connection.h"
#include "common/time_types.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace clouddb::client {

/// How read statements are spread over slaves.
enum class BalancePolicy {
  /// Cycle through slaves in order (MySQL Connector/J's default; what the
  /// paper deploys).
  kRoundRobin,
  /// Send to the slave with the fewest outstanding requests.
  kLeastOutstanding,
  /// Send to the slave with the lowest EWMA response time — the paper's
  /// §IV-B.2 suggestion of "a smart load balancer which is able of balancing
  /// the operations based on estimated processing time".
  kLatencyWeighted,
  /// Freshness-SLA routing: filter slaves down to those whose *observed*
  /// replication staleness (from the staleness probe; see
  /// SetStalenessProbe) is within the read's bound, then balance among them
  /// with `ProxyOptions::freshness_base`. Reads with no eligible slave —
  /// every replica over bound, staleness unknown, or a bound of 0 — fall
  /// back to the master, which is fresh by definition.
  kFreshnessAware,
};

const char* BalancePolicyToString(BalancePolicy policy);

/// A read with no staleness bound: any replica may serve it.
inline constexpr SimDuration kNoStalenessBound = -1;

/// Per-read routing options carried by the freshness-SLA path.
struct ReadOptions {
  /// Maximum tolerated observed staleness for this read. Negative =
  /// unbounded; 0 = always the master (no replica is ever *exactly* fresh).
  SimDuration max_staleness = kNoStalenessBound;
};

struct ProxyOptions {
  BalancePolicy policy = BalancePolicy::kRoundRobin;
  ConnectionPoolOptions pool;
  /// EWMA smoothing for kLatencyWeighted.
  double ewma_alpha = 0.2;
  /// ExecuteAuto classifies read vs write through a proxy-local statement
  /// cache (fingerprint once per shape) instead of parsing every statement.
  bool route_cache = true;
  size_t route_cache_capacity = db::StatementCache::kDefaultCapacity;
  /// Balancing applied among the in-bound slaves under kFreshnessAware
  /// (freshness filters, the base policy balances).
  BalancePolicy freshness_base = BalancePolicy::kRoundRobin;
};

/// The application-side statement router (the paper's MySQL Connector/J
/// replication proxy): "all write operations are sent to the master while
/// all read operations are distributed among slaves". One connection pool
/// per backend.
class ReadWriteSplitProxy {
 public:
  using Callback = Connection::Callback;

  ReadWriteSplitProxy(sim::Simulation* sim, net::Network* network,
                      net::NodeId client_node, repl::MasterNode* master,
                      std::vector<repl::SlaveNode*> slaves,
                      const ProxyOptions& options);

  /// Routes `sql`: is_read -> a slave per the balancing policy (the master
  /// serves reads only when there are no slaves); otherwise -> the master.
  void Execute(const std::string& sql, bool is_read, SimDuration cpu_cost,
               Callback done);

  /// Freshness-SLA routing: like Execute, but a read carrying a
  /// non-negative `read_options.max_staleness` only goes to a slave whose
  /// observed staleness is within the bound (master fallback otherwise),
  /// and a bounded read that a slave fails with Unavailable mid-query
  /// (partition, crash) is transparently retried on the master.
  void Execute(const std::string& sql, bool is_read, SimDuration cpu_cost,
               const ReadOptions& read_options, Callback done);

  /// Convenience: determines read vs write by parsing `sql`.
  void ExecuteAuto(const std::string& sql, SimDuration cpu_cost,
                   Callback done);

  /// ExecuteAuto with a staleness bound for reads (writes ignore it).
  void ExecuteAuto(const std::string& sql, SimDuration cpu_cost,
                   const ReadOptions& read_options, Callback done);

  /// Wires the observed-staleness signal (ms, per slave index; negative =
  /// unknown) that kFreshnessAware and bounded reads consult. Typically
  /// control::FreshnessTracker::Probe(); the proxy cannot depend on the
  /// control layer, so the signal arrives as a callback.
  void SetStalenessProbe(std::function<double(int)> probe) {
    staleness_probe_ = std::move(probe);
  }

  /// Observed staleness of slave `i` in ms; negative when no probe is wired
  /// or the probe has no data yet.
  double SlaveStalenessMs(int slave_index) const {
    return staleness_probe_ ? staleness_probe_(slave_index) : -1.0;
  }

  /// Adds a freshly attached replica to the read rotation (the
  /// application-managed elasticity the paper motivates: the application
  /// reconfigures its own proxy when it scales the database tier).
  void AddSlave(repl::SlaveNode* slave);

  /// Repoints writes at a new master (after a failover promotion). A fresh
  /// connection pool is created; in-flight requests to the old master fail
  /// with Unavailable and are the application's to retry.
  void ReplaceMaster(repl::MasterNode* master);

  /// Removes a replica from the read rotation without invalidating
  /// in-flight requests (the pool stays alive until the proxy is destroyed).
  /// Used when a slave is promoted to master or decommissioned.
  void DeactivateSlave(int slave_index);
  /// Puts a deactivated replica back into the rotation (elastic scale-out
  /// reviving a retired slave).
  void ReactivateSlave(int slave_index);
  bool IsSlaveActive(int slave_index) const {
    return active_[static_cast<size_t>(slave_index)];
  }

  int num_slaves() const { return static_cast<int>(slave_pools_.size()); }
  int64_t writes_routed() const { return writes_routed_; }
  int64_t reads_routed(int slave_index) const {
    return reads_routed_[static_cast<size_t>(slave_index)];
  }
  int64_t total_reads_routed() const;
  ConnectionPool& master_pool() { return *master_pool_; }
  ConnectionPool& slave_pool(int i) {
    return *slave_pools_[static_cast<size_t>(i)];
  }

  /// Routing cache stats (hits = statements classified without a parse).
  const db::StatementCache& route_cache() const { return route_cache_; }

  /// Proxy metric registry: routing counters (bounded reads, master
  /// fallbacks, retries, SLA checks) plus per-backend outstanding/EWMA
  /// probes — the client-tier slice of the cluster-wide spine.
  metrics::MetricRegistry& metrics() { return metrics_; }
  const metrics::MetricRegistry& metrics() const { return metrics_; }

 private:
  int PickSlave(SimDuration max_staleness);
  bool WithinBound(int slave_index, SimDuration max_staleness) const;

  sim::Simulation* sim_;
  net::Network* network_;
  net::NodeId client_node_;
  ProxyOptions options_;
  db::StatementCache route_cache_;
  std::unique_ptr<ConnectionPool> master_pool_;
  /// Pools for replaced masters, kept alive for in-flight requests.
  std::vector<std::unique_ptr<ConnectionPool>> old_master_pools_;
  std::vector<std::unique_ptr<ConnectionPool>> slave_pools_;
  // Balancing state:
  size_t round_robin_next_ = 0;
  std::vector<bool> active_;
  std::vector<int64_t> outstanding_;
  std::vector<double> ewma_response_us_;
  std::vector<int64_t> reads_routed_;
  int64_t writes_routed_ = 0;
  std::function<double(int)> staleness_probe_;
  // Metrics (owned by metrics_; raw pointers stay valid for its lifetime).
  metrics::MetricRegistry metrics_;
  metrics::Counter* reads_total_ = nullptr;
  metrics::Counter* writes_total_ = nullptr;
  metrics::Counter* bounded_reads_ = nullptr;
  metrics::Counter* bounded_to_slave_ = nullptr;
  metrics::Counter* master_fallbacks_ = nullptr;
  metrics::Counter* read_retries_ = nullptr;
  metrics::Counter* sla_checked_ = nullptr;
  metrics::Counter* sla_violations_ = nullptr;
};

}  // namespace clouddb::client

#endif  // CLOUDDB_CLIENT_RW_SPLIT_PROXY_H_
