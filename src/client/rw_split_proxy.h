#ifndef CLOUDDB_CLIENT_RW_SPLIT_PROXY_H_
#define CLOUDDB_CLIENT_RW_SPLIT_PROXY_H_

#include <memory>
#include <string>
#include <vector>

#include "client/connection_pool.h"
#include "db/statement_cache.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "client/connection.h"
#include "common/time_types.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace clouddb::client {

/// How read statements are spread over slaves.
enum class BalancePolicy {
  /// Cycle through slaves in order (MySQL Connector/J's default; what the
  /// paper deploys).
  kRoundRobin,
  /// Send to the slave with the fewest outstanding requests.
  kLeastOutstanding,
  /// Send to the slave with the lowest EWMA response time — the paper's
  /// §IV-B.2 suggestion of "a smart load balancer which is able of balancing
  /// the operations based on estimated processing time".
  kLatencyWeighted,
};

const char* BalancePolicyToString(BalancePolicy policy);

struct ProxyOptions {
  BalancePolicy policy = BalancePolicy::kRoundRobin;
  ConnectionPoolOptions pool;
  /// EWMA smoothing for kLatencyWeighted.
  double ewma_alpha = 0.2;
  /// ExecuteAuto classifies read vs write through a proxy-local statement
  /// cache (fingerprint once per shape) instead of parsing every statement.
  bool route_cache = true;
  size_t route_cache_capacity = db::StatementCache::kDefaultCapacity;
};

/// The application-side statement router (the paper's MySQL Connector/J
/// replication proxy): "all write operations are sent to the master while
/// all read operations are distributed among slaves". One connection pool
/// per backend.
class ReadWriteSplitProxy {
 public:
  using Callback = Connection::Callback;

  ReadWriteSplitProxy(sim::Simulation* sim, net::Network* network,
                      net::NodeId client_node, repl::MasterNode* master,
                      std::vector<repl::SlaveNode*> slaves,
                      const ProxyOptions& options);

  /// Routes `sql`: is_read -> a slave per the balancing policy (the master
  /// serves reads only when there are no slaves); otherwise -> the master.
  void Execute(const std::string& sql, bool is_read, SimDuration cpu_cost,
               Callback done);

  /// Convenience: determines read vs write by parsing `sql`.
  void ExecuteAuto(const std::string& sql, SimDuration cpu_cost,
                   Callback done);

  /// Adds a freshly attached replica to the read rotation (the
  /// application-managed elasticity the paper motivates: the application
  /// reconfigures its own proxy when it scales the database tier).
  void AddSlave(repl::SlaveNode* slave);

  /// Repoints writes at a new master (after a failover promotion). A fresh
  /// connection pool is created; in-flight requests to the old master fail
  /// with Unavailable and are the application's to retry.
  void ReplaceMaster(repl::MasterNode* master);

  /// Removes a replica from the read rotation without invalidating
  /// in-flight requests (the pool stays alive until the proxy is destroyed).
  /// Used when a slave is promoted to master or decommissioned.
  void DeactivateSlave(int slave_index);
  bool IsSlaveActive(int slave_index) const {
    return active_[static_cast<size_t>(slave_index)];
  }

  int num_slaves() const { return static_cast<int>(slave_pools_.size()); }
  int64_t writes_routed() const { return writes_routed_; }
  int64_t reads_routed(int slave_index) const {
    return reads_routed_[static_cast<size_t>(slave_index)];
  }
  int64_t total_reads_routed() const;
  ConnectionPool& master_pool() { return *master_pool_; }
  ConnectionPool& slave_pool(int i) {
    return *slave_pools_[static_cast<size_t>(i)];
  }

  /// Routing cache stats (hits = statements classified without a parse).
  const db::StatementCache& route_cache() const { return route_cache_; }

 private:
  int PickSlave();

  sim::Simulation* sim_;
  net::Network* network_;
  net::NodeId client_node_;
  ProxyOptions options_;
  db::StatementCache route_cache_;
  std::unique_ptr<ConnectionPool> master_pool_;
  /// Pools for replaced masters, kept alive for in-flight requests.
  std::vector<std::unique_ptr<ConnectionPool>> old_master_pools_;
  std::vector<std::unique_ptr<ConnectionPool>> slave_pools_;
  // Balancing state:
  size_t round_robin_next_ = 0;
  std::vector<bool> active_;
  std::vector<int64_t> outstanding_;
  std::vector<double> ewma_response_us_;
  std::vector<int64_t> reads_routed_;
  int64_t writes_routed_ = 0;
};

}  // namespace clouddb::client

#endif  // CLOUDDB_CLIENT_RW_SPLIT_PROXY_H_
