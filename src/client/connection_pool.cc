#include "client/connection_pool.h"
#include "client/connection.h"
#include "common/result.h"
#include "common/time_types.h"
#include "db/database.h"
#include "net/network.h"
#include "repl/db_node.h"
#include "sim/simulation.h"

#include <cassert>
#include <utility>

namespace clouddb::client {

ConnectionPool::ConnectionPool(sim::Simulation* sim, net::Network* network,
                               net::NodeId client_node, repl::DbNode* target,
                               const ConnectionPoolOptions& options)
    : sim_(sim),
      network_(network),
      client_node_(client_node),
      target_(target),
      options_(options) {
  assert(options.max_active >= 1);
}

void ConnectionPool::Borrow(Ready ready) {
  ++borrows_;
  if (!idle_.empty()) {
    Connection* conn = idle_.front();
    idle_.pop_front();
    ready(conn);
    return;
  }
  if (total_created_ < options_.max_active) {
    CreateConnection(std::move(ready));
    return;
  }
  waiters_.push_back(std::move(ready));
}

void ConnectionPool::Return(Connection* connection) {
  assert(!connection->busy());
  if (!waiters_.empty()) {
    Ready next = std::move(waiters_.front());
    waiters_.pop_front();
    next(connection);
    return;
  }
  idle_.push_back(connection);
}

void ConnectionPool::Execute(const std::string& sql, SimDuration cpu_cost,
                             Connection::Callback done) {
  Borrow([this, sql, cpu_cost, done = std::move(done)](Connection* conn) mutable {
    conn->Execute(sql, cpu_cost,
                  [this, conn,
                   done = std::move(done)](Result<db::ExecResult> result) mutable {
                    Return(conn);
                    done(std::move(result));
                  });
  });
}

void ConnectionPool::CreateConnection(Ready ready) {
  ++total_created_;  // reserve the slot before the async handshake
  ++handshakes_;
  // The connection handshake costs one network round trip.
  network_->Ping(client_node_, target_->node_id(),
                 [this, ready = std::move(ready)](SimDuration) mutable {
                   all_.push_back(std::make_unique<Connection>(
                       sim_, network_, client_node_, target_, next_conn_id_++));
                   ready(all_.back().get());
                 });
}

}  // namespace clouddb::client
