#ifndef CLOUDDB_CLIENT_CONNECTION_H_
#define CLOUDDB_CLIENT_CONNECTION_H_

#include <cstdint>
#include <functional>

#include "common/result.h"
#include "common/time_types.h"
#include "db/database.h"
#include "net/network.h"
#include "repl/db_node.h"
#include "sim/simulation.h"

namespace clouddb::client {

/// A client-side connection from an application instance to one database
/// node. Carries one request at a time (like a real driver connection):
/// request and response each traverse the network, and the statement is
/// charged to the target node's CPU in between.
class Connection {
 public:
  using Callback = std::function<void(Result<db::ExecResult>)>;

  Connection(sim::Simulation* sim, net::Network* network,
             net::NodeId client_node, repl::DbNode* target, int64_t id);

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Sends `sql` to the target. `cpu_cost` < 0 uses the node's cost model
  /// default. Must not be called while `busy()`.
  void Execute(const std::string& sql, SimDuration cpu_cost, Callback done);

  bool busy() const { return busy_; }
  repl::DbNode* target() { return target_; }
  int64_t id() const { return id_; }
  int64_t requests_completed() const { return requests_completed_; }
  /// Mean round-trip response time over completed requests, µs.
  double MeanResponseMicros() const;

 private:
  sim::Simulation* sim_;
  net::Network* network_;
  net::NodeId client_node_;
  repl::DbNode* target_;
  int64_t id_;
  bool busy_ = false;
  int64_t requests_completed_ = 0;
  int64_t total_response_micros_ = 0;
};

}  // namespace clouddb::client

#endif  // CLOUDDB_CLIENT_CONNECTION_H_
