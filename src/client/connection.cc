#include "client/connection.h"
#include "common/result.h"
#include "common/time_types.h"
#include "db/database.h"
#include "net/network.h"
#include "repl/db_node.h"
#include "sim/simulation.h"

#include <cassert>
#include <utility>

namespace clouddb::client {

Connection::Connection(sim::Simulation* sim, net::Network* network,
                       net::NodeId client_node, repl::DbNode* target,
                       int64_t id)
    : sim_(sim),
      network_(network),
      client_node_(client_node),
      target_(target),
      id_(id) {}

void Connection::Execute(const std::string& sql, SimDuration cpu_cost,
                         Callback done) {
  assert(!busy_);
  busy_ = true;
  SimTime started = sim_->Now();
  int64_t request_bytes = static_cast<int64_t>(sql.size()) + 64;
  network_->Send(
      client_node_, target_->node_id(), request_bytes,
      [this, sql, cpu_cost, started, done = std::move(done)]() mutable {
        target_->Submit(
            sql, cpu_cost,
            [this, started,
             done = std::move(done)](Result<db::ExecResult> result) mutable {
              int64_t response_bytes =
                  result.ok()
                      ? static_cast<int64_t>(result->rows.size()) * 64 + 64
                      : 64;
              network_->Send(target_->node_id(), client_node_, response_bytes,
                             [this, started, done = std::move(done),
                              result = std::move(result)]() mutable {
                               busy_ = false;
                               ++requests_completed_;
                               total_response_micros_ += sim_->Now() - started;
                               done(std::move(result));
                             });
            });
      });
}

double Connection::MeanResponseMicros() const {
  if (requests_completed_ == 0) return 0.0;
  return static_cast<double>(total_response_micros_) /
         static_cast<double>(requests_completed_);
}

}  // namespace clouddb::client
