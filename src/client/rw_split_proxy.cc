#include "client/rw_split_proxy.h"

#include <cassert>

#include "db/sql_parser.h"
#include "client/connection_pool.h"
#include "common/result.h"
#include "common/str_util.h"
#include "common/time_types.h"
#include "db/database.h"
#include "db/sql_ast.h"
#include "net/network.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"

namespace clouddb::client {

const char* BalancePolicyToString(BalancePolicy policy) {
  switch (policy) {
    case BalancePolicy::kRoundRobin:
      return "round_robin";
    case BalancePolicy::kLeastOutstanding:
      return "least_outstanding";
    case BalancePolicy::kLatencyWeighted:
      return "latency_weighted";
    case BalancePolicy::kFreshnessAware:
      return "freshness_aware";
  }
  return "?";
}

ReadWriteSplitProxy::ReadWriteSplitProxy(sim::Simulation* sim,
                                         net::Network* network,
                                         net::NodeId client_node,
                                         repl::MasterNode* master,
                                         std::vector<repl::SlaveNode*> slaves,
                                         const ProxyOptions& options)
    : sim_(sim), network_(network), client_node_(client_node),
      options_(options), route_cache_(options.route_cache_capacity),
      metrics_("proxy") {
  reads_total_ = metrics_.AddCounter("proxy.reads.total");
  writes_total_ = metrics_.AddCounter("proxy.writes.total");
  bounded_reads_ = metrics_.AddCounter("proxy.reads.bounded");
  bounded_to_slave_ = metrics_.AddCounter("proxy.reads.bounded_to_slave");
  master_fallbacks_ = metrics_.AddCounter("proxy.reads.master_fallback");
  read_retries_ = metrics_.AddCounter("proxy.reads.retries");
  sla_checked_ = metrics_.AddCounter("proxy.sla.checked");
  sla_violations_ = metrics_.AddCounter("proxy.sla.violations");
  master_pool_ = std::make_unique<ConnectionPool>(sim, network, client_node,
                                                  master, options.pool);
  for (repl::SlaveNode* slave : slaves) {
    AddSlave(slave);
  }
}

void ReadWriteSplitProxy::AddSlave(repl::SlaveNode* slave) {
  int index = static_cast<int>(slave_pools_.size());
  slave_pools_.push_back(std::make_unique<ConnectionPool>(
      sim_, network_, client_node_, slave, options_.pool));
  active_.push_back(true);
  outstanding_.push_back(0);
  ewma_response_us_.push_back(0.0);
  reads_routed_.push_back(0);
  // Per-backend pull probes over the balancing state the proxy keeps anyway.
  metrics_.AddProbe(StrFormat("proxy.backend.%d.outstanding", index),
                    [this, index] {
                      return static_cast<double>(
                          outstanding_[static_cast<size_t>(index)]);
                    });
  metrics_.AddProbe(StrFormat("proxy.backend.%d.ewma_response_us", index),
                    [this, index] {
                      return ewma_response_us_[static_cast<size_t>(index)];
                    });
  metrics_.AddProbe(StrFormat("proxy.backend.%d.reads_routed", index),
                    [this, index] {
                      return static_cast<double>(
                          reads_routed_[static_cast<size_t>(index)]);
                    });
}

void ReadWriteSplitProxy::ReplaceMaster(repl::MasterNode* master) {
  old_master_pools_.push_back(std::move(master_pool_));
  master_pool_ = std::make_unique<ConnectionPool>(sim_, network_, client_node_,
                                                  master, options_.pool);
}

void ReadWriteSplitProxy::DeactivateSlave(int slave_index) {
  active_[static_cast<size_t>(slave_index)] = false;
}

void ReadWriteSplitProxy::ReactivateSlave(int slave_index) {
  active_[static_cast<size_t>(slave_index)] = true;
}

void ReadWriteSplitProxy::Execute(const std::string& sql, bool is_read,
                                  SimDuration cpu_cost, Callback done) {
  Execute(sql, is_read, cpu_cost, ReadOptions{}, std::move(done));
}

void ReadWriteSplitProxy::Execute(const std::string& sql, bool is_read,
                                  SimDuration cpu_cost,
                                  const ReadOptions& read_options,
                                  Callback done) {
  if (is_read) {
    reads_total_->Increment();
  } else {
    writes_total_->Increment();
  }
  bool bounded = is_read && read_options.max_staleness >= 0;
  int slave = is_read ? PickSlave(read_options.max_staleness) : -1;
  if (bounded) {
    bounded_reads_->Increment();
    if (slave < 0) {
      master_fallbacks_->Increment();
    } else {
      bounded_to_slave_->Increment();
    }
  }
  if (slave < 0) {  // write, or no (eligible) slave to read from
    ++writes_routed_;
    master_pool_->Execute(sql, cpu_cost, std::move(done));
    return;
  }
  ++reads_routed_[static_cast<size_t>(slave)];
  ++outstanding_[static_cast<size_t>(slave)];
  SimTime started = sim_->Now();
  if (!bounded) {
    slave_pools_[static_cast<size_t>(slave)]->Execute(
        sql, cpu_cost,
        [this, slave, started,
         done = std::move(done)](Result<db::ExecResult> result) mutable {
          --outstanding_[static_cast<size_t>(slave)];
          double response = static_cast<double>(sim_->Now() - started);
          double& ewma = ewma_response_us_[static_cast<size_t>(slave)];
          ewma = ewma == 0.0
                     ? response
                     : (1.0 - options_.ewma_alpha) * ewma +
                           options_.ewma_alpha * response;
          done(std::move(result));
        });
    return;
  }
  SimDuration bound = read_options.max_staleness;
  slave_pools_[static_cast<size_t>(slave)]->Execute(
      sql, cpu_cost,
      [this, slave, started, bound, sql, cpu_cost,
       done = std::move(done)](Result<db::ExecResult> result) mutable {
        --outstanding_[static_cast<size_t>(slave)];
        double response = static_cast<double>(sim_->Now() - started);
        double& ewma = ewma_response_us_[static_cast<size_t>(slave)];
        ewma = ewma == 0.0
                   ? response
                   : (1.0 - options_.ewma_alpha) * ewma +
                         options_.ewma_alpha * response;
        if (!result.ok() && result.status().IsUnavailable()) {
          // The slave went away mid-query (partition, crash, retirement
          // race). A bounded read must still complete within its SLA, and
          // the master is fresh by definition — reroute there.
          read_retries_->Increment();
          ++writes_routed_;
          master_pool_->Execute(sql, cpu_cost, std::move(done));
          return;
        }
        // Achieved-freshness accounting: the routing decision used the
        // probe as of admission; by completion the slave may have fallen
        // behind. Re-consult the probe so violations are *measured*, not
        // assumed away.
        sla_checked_->Increment();
        double staleness_ms = SlaveStalenessMs(slave);
        if (staleness_ms >= 0.0 && MillisF(staleness_ms) > bound) {
          sla_violations_->Increment();
        }
        done(std::move(result));
      });
}

void ReadWriteSplitProxy::ExecuteAuto(const std::string& sql,
                                      SimDuration cpu_cost, Callback done) {
  ExecuteAuto(sql, cpu_cost, ReadOptions{}, std::move(done));
}

void ReadWriteSplitProxy::ExecuteAuto(const std::string& sql,
                                      SimDuration cpu_cost,
                                      const ReadOptions& read_options,
                                      Callback done) {
  bool is_read = false;
  bool classified = false;
  if (options_.route_cache) {
    // Route from the cached template: after the first sighting of a
    // statement shape, classification costs a fingerprint, not a parse.
    auto call = route_cache_.Prepare(sql);
    if (call.ok()) {
      is_read = !db::IsWriteStatement(call->prepared->statement) &&
                !db::IsTransactionControl(call->prepared->statement);
      classified = true;
    }
  }
  if (!classified) {
    auto parsed = db::ParseSql(sql);
    is_read = parsed.ok() && !db::IsWriteStatement(*parsed) &&
              !db::IsTransactionControl(*parsed);
  }
  Execute(sql, is_read, cpu_cost, read_options, std::move(done));
}

int64_t ReadWriteSplitProxy::total_reads_routed() const {
  int64_t total = 0;
  for (int64_t r : reads_routed_) total += r;
  return total;
}

bool ReadWriteSplitProxy::WithinBound(int slave_index,
                                      SimDuration max_staleness) const {
  if (max_staleness < 0) return true;  // unbounded read
  double staleness_ms = SlaveStalenessMs(slave_index);
  // Unknown staleness (no probe wired, or no heartbeat data yet) is treated
  // as over-bound: a bounded read never gambles on an unmeasured replica.
  if (staleness_ms < 0.0) return false;
  return MillisF(staleness_ms) <= max_staleness;
}

int ReadWriteSplitProxy::PickSlave(SimDuration max_staleness) {
  // A bound of 0 always reads the master: replication is asynchronous, so
  // no replica is ever exactly fresh.
  if (max_staleness == 0) return -1;
  size_t n = slave_pools_.size();
  std::vector<bool> eligible(n);
  size_t eligible_count = 0;
  for (size_t i = 0; i < n; ++i) {
    eligible[i] =
        active_[i] && WithinBound(static_cast<int>(i), max_staleness);
    if (eligible[i]) ++eligible_count;
  }
  if (eligible_count == 0) return -1;
  BalancePolicy policy = options_.policy == BalancePolicy::kFreshnessAware
                             ? options_.freshness_base
                             : options_.policy;
  // A self-referential freshness_base degrades to round-robin.
  if (policy == BalancePolicy::kFreshnessAware) {
    policy = BalancePolicy::kRoundRobin;
  }
  switch (policy) {
    case BalancePolicy::kRoundRobin: {
      // Advance past deactivated / over-bound replicas.
      for (size_t attempts = 0; attempts < n; ++attempts) {
        size_t pick = round_robin_next_ % n;
        ++round_robin_next_;
        if (eligible[pick]) return static_cast<int>(pick);
      }
      return -1;
    }
    case BalancePolicy::kLeastOutstanding: {
      int best = -1;
      for (size_t i = 0; i < n; ++i) {
        if (!eligible[i]) continue;
        if (best < 0 || outstanding_[i] < outstanding_[static_cast<size_t>(best)]) {
          best = static_cast<int>(i);
        }
      }
      return best;
    }
    case BalancePolicy::kLatencyWeighted: {
      // Prefer unmeasured slaves, then the lowest expected completion time
      // (EWMA response scaled by queue depth).
      int best = -1;
      double best_score = -1.0;
      for (size_t i = 0; i < n; ++i) {
        if (!eligible[i]) continue;
        if (ewma_response_us_[i] == 0.0) return static_cast<int>(i);
        double score = ewma_response_us_[i] *
                       static_cast<double>(outstanding_[i] + 1);
        if (best_score < 0.0 || score < best_score) {
          best_score = score;
          best = static_cast<int>(i);
        }
      }
      return best;
    }
  }
  return -1;
}

}  // namespace clouddb::client
