#include "client/rw_split_proxy.h"

#include <cassert>

#include "db/sql_parser.h"
#include "client/connection_pool.h"
#include "common/result.h"
#include "common/time_types.h"
#include "db/database.h"
#include "db/sql_ast.h"
#include "net/network.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"

namespace clouddb::client {

const char* BalancePolicyToString(BalancePolicy policy) {
  switch (policy) {
    case BalancePolicy::kRoundRobin:
      return "round_robin";
    case BalancePolicy::kLeastOutstanding:
      return "least_outstanding";
    case BalancePolicy::kLatencyWeighted:
      return "latency_weighted";
  }
  return "?";
}

ReadWriteSplitProxy::ReadWriteSplitProxy(sim::Simulation* sim,
                                         net::Network* network,
                                         net::NodeId client_node,
                                         repl::MasterNode* master,
                                         std::vector<repl::SlaveNode*> slaves,
                                         const ProxyOptions& options)
    : sim_(sim), network_(network), client_node_(client_node),
      options_(options), route_cache_(options.route_cache_capacity) {
  master_pool_ = std::make_unique<ConnectionPool>(sim, network, client_node,
                                                  master, options.pool);
  for (repl::SlaveNode* slave : slaves) {
    AddSlave(slave);
  }
}

void ReadWriteSplitProxy::AddSlave(repl::SlaveNode* slave) {
  slave_pools_.push_back(std::make_unique<ConnectionPool>(
      sim_, network_, client_node_, slave, options_.pool));
  active_.push_back(true);
  outstanding_.push_back(0);
  ewma_response_us_.push_back(0.0);
  reads_routed_.push_back(0);
}

void ReadWriteSplitProxy::ReplaceMaster(repl::MasterNode* master) {
  old_master_pools_.push_back(std::move(master_pool_));
  master_pool_ = std::make_unique<ConnectionPool>(sim_, network_, client_node_,
                                                  master, options_.pool);
}

void ReadWriteSplitProxy::DeactivateSlave(int slave_index) {
  active_[static_cast<size_t>(slave_index)] = false;
}

void ReadWriteSplitProxy::Execute(const std::string& sql, bool is_read,
                                  SimDuration cpu_cost, Callback done) {
  int slave = is_read ? PickSlave() : -1;
  if (slave < 0) {  // write, or no active slave to read from
    ++writes_routed_;
    master_pool_->Execute(sql, cpu_cost, std::move(done));
    return;
  }
  ++reads_routed_[static_cast<size_t>(slave)];
  ++outstanding_[static_cast<size_t>(slave)];
  SimTime started = sim_->Now();
  slave_pools_[static_cast<size_t>(slave)]->Execute(
      sql, cpu_cost,
      [this, slave, started,
       done = std::move(done)](Result<db::ExecResult> result) mutable {
        --outstanding_[static_cast<size_t>(slave)];
        double response = static_cast<double>(sim_->Now() - started);
        double& ewma = ewma_response_us_[static_cast<size_t>(slave)];
        ewma = ewma == 0.0
                   ? response
                   : (1.0 - options_.ewma_alpha) * ewma +
                         options_.ewma_alpha * response;
        done(std::move(result));
      });
}

void ReadWriteSplitProxy::ExecuteAuto(const std::string& sql,
                                      SimDuration cpu_cost, Callback done) {
  bool is_read = false;
  bool classified = false;
  if (options_.route_cache) {
    // Route from the cached template: after the first sighting of a
    // statement shape, classification costs a fingerprint, not a parse.
    auto call = route_cache_.Prepare(sql);
    if (call.ok()) {
      is_read = !db::IsWriteStatement(call->prepared->statement) &&
                !db::IsTransactionControl(call->prepared->statement);
      classified = true;
    }
  }
  if (!classified) {
    auto parsed = db::ParseSql(sql);
    is_read = parsed.ok() && !db::IsWriteStatement(*parsed) &&
              !db::IsTransactionControl(*parsed);
  }
  Execute(sql, is_read, cpu_cost, std::move(done));
}

int64_t ReadWriteSplitProxy::total_reads_routed() const {
  int64_t total = 0;
  for (int64_t r : reads_routed_) total += r;
  return total;
}

int ReadWriteSplitProxy::PickSlave() {
  size_t n = slave_pools_.size();
  size_t active_count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (active_[i]) ++active_count;
  }
  if (active_count == 0) return -1;
  switch (options_.policy) {
    case BalancePolicy::kRoundRobin: {
      // Advance past deactivated replicas.
      for (size_t attempts = 0; attempts < n; ++attempts) {
        size_t pick = round_robin_next_ % n;
        ++round_robin_next_;
        if (active_[pick]) return static_cast<int>(pick);
      }
      return -1;
    }
    case BalancePolicy::kLeastOutstanding: {
      int best = -1;
      for (size_t i = 0; i < n; ++i) {
        if (!active_[i]) continue;
        if (best < 0 || outstanding_[i] < outstanding_[static_cast<size_t>(best)]) {
          best = static_cast<int>(i);
        }
      }
      return best;
    }
    case BalancePolicy::kLatencyWeighted: {
      // Prefer unmeasured slaves, then the lowest expected completion time
      // (EWMA response scaled by queue depth).
      int best = -1;
      double best_score = -1.0;
      for (size_t i = 0; i < n; ++i) {
        if (!active_[i]) continue;
        if (ewma_response_us_[i] == 0.0) return static_cast<int>(i);
        double score = ewma_response_us_[i] *
                       static_cast<double>(outstanding_[i] + 1);
        if (best_score < 0.0 || score < best_score) {
          best_score = score;
          best = static_cast<int>(i);
        }
      }
      return best;
    }
  }
  return -1;
}

}  // namespace clouddb::client
