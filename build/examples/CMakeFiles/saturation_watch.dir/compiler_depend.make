# Empty compiler generated dependencies file for saturation_watch.
# This may be replaced when dependencies are built.
