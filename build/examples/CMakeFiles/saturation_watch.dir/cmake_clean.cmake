file(REMOVE_RECURSE
  "CMakeFiles/saturation_watch.dir/saturation_watch.cpp.o"
  "CMakeFiles/saturation_watch.dir/saturation_watch.cpp.o.d"
  "saturation_watch"
  "saturation_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saturation_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
