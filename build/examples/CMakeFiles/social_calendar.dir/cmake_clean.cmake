file(REMOVE_RECURSE
  "CMakeFiles/social_calendar.dir/social_calendar.cpp.o"
  "CMakeFiles/social_calendar.dir/social_calendar.cpp.o.d"
  "social_calendar"
  "social_calendar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_calendar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
