# Empty compiler generated dependencies file for social_calendar.
# This may be replaced when dependencies are built.
