file(REMOVE_RECURSE
  "CMakeFiles/fig2_throughput_5050.dir/fig2_throughput_5050.cc.o"
  "CMakeFiles/fig2_throughput_5050.dir/fig2_throughput_5050.cc.o.d"
  "fig2_throughput_5050"
  "fig2_throughput_5050.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_throughput_5050.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
