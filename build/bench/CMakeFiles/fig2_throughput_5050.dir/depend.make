# Empty dependencies file for fig2_throughput_5050.
# This may be replaced when dependencies are built.
