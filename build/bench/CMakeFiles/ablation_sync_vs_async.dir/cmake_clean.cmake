file(REMOVE_RECURSE
  "CMakeFiles/ablation_sync_vs_async.dir/ablation_sync_vs_async.cc.o"
  "CMakeFiles/ablation_sync_vs_async.dir/ablation_sync_vs_async.cc.o.d"
  "ablation_sync_vs_async"
  "ablation_sync_vs_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sync_vs_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
