# Empty dependencies file for ablation_sync_vs_async.
# This may be replaced when dependencies are built.
