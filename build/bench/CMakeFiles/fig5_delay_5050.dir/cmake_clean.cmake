file(REMOVE_RECURSE
  "CMakeFiles/fig5_delay_5050.dir/fig5_delay_5050.cc.o"
  "CMakeFiles/fig5_delay_5050.dir/fig5_delay_5050.cc.o.d"
  "fig5_delay_5050"
  "fig5_delay_5050.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_delay_5050.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
