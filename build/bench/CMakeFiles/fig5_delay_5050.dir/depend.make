# Empty dependencies file for fig5_delay_5050.
# This may be replaced when dependencies are built.
