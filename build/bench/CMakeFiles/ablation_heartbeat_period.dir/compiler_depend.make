# Empty compiler generated dependencies file for ablation_heartbeat_period.
# This may be replaced when dependencies are built.
