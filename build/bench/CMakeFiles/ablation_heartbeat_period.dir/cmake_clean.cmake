file(REMOVE_RECURSE
  "CMakeFiles/ablation_heartbeat_period.dir/ablation_heartbeat_period.cc.o"
  "CMakeFiles/ablation_heartbeat_period.dir/ablation_heartbeat_period.cc.o.d"
  "ablation_heartbeat_period"
  "ablation_heartbeat_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heartbeat_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
