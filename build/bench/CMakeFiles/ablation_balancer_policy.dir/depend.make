# Empty dependencies file for ablation_balancer_policy.
# This may be replaced when dependencies are built.
