file(REMOVE_RECURSE
  "CMakeFiles/ablation_balancer_policy.dir/ablation_balancer_policy.cc.o"
  "CMakeFiles/ablation_balancer_policy.dir/ablation_balancer_policy.cc.o.d"
  "ablation_balancer_policy"
  "ablation_balancer_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_balancer_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
