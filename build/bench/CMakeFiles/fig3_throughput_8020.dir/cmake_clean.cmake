file(REMOVE_RECURSE
  "CMakeFiles/fig3_throughput_8020.dir/fig3_throughput_8020.cc.o"
  "CMakeFiles/fig3_throughput_8020.dir/fig3_throughput_8020.cc.o.d"
  "fig3_throughput_8020"
  "fig3_throughput_8020.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_throughput_8020.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
