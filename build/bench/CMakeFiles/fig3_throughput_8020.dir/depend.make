# Empty dependencies file for fig3_throughput_8020.
# This may be replaced when dependencies are built.
