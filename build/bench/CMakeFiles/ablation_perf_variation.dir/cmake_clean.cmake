file(REMOVE_RECURSE
  "CMakeFiles/ablation_perf_variation.dir/ablation_perf_variation.cc.o"
  "CMakeFiles/ablation_perf_variation.dir/ablation_perf_variation.cc.o.d"
  "ablation_perf_variation"
  "ablation_perf_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_perf_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
