# Empty dependencies file for ablation_perf_variation.
# This may be replaced when dependencies are built.
