# Empty dependencies file for ping_rtt_table.
# This may be replaced when dependencies are built.
