file(REMOVE_RECURSE
  "CMakeFiles/ping_rtt_table.dir/ping_rtt_table.cc.o"
  "CMakeFiles/ping_rtt_table.dir/ping_rtt_table.cc.o.d"
  "ping_rtt_table"
  "ping_rtt_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ping_rtt_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
