# Empty compiler generated dependencies file for fig6_delay_8020.
# This may be replaced when dependencies are built.
