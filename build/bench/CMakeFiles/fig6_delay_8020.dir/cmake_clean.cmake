file(REMOVE_RECURSE
  "CMakeFiles/fig6_delay_8020.dir/fig6_delay_8020.cc.o"
  "CMakeFiles/fig6_delay_8020.dir/fig6_delay_8020.cc.o.d"
  "fig6_delay_8020"
  "fig6_delay_8020.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_delay_8020.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
