# Empty compiler generated dependencies file for fig4_clock_sync.
# This may be replaced when dependencies are built.
