file(REMOVE_RECURSE
  "CMakeFiles/fig4_clock_sync.dir/fig4_clock_sync.cc.o"
  "CMakeFiles/fig4_clock_sync.dir/fig4_clock_sync.cc.o.d"
  "fig4_clock_sync"
  "fig4_clock_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_clock_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
