file(REMOVE_RECURSE
  "CMakeFiles/clouddb_cloudstone.dir/benchmark_driver.cc.o"
  "CMakeFiles/clouddb_cloudstone.dir/benchmark_driver.cc.o.d"
  "CMakeFiles/clouddb_cloudstone.dir/operations.cc.o"
  "CMakeFiles/clouddb_cloudstone.dir/operations.cc.o.d"
  "CMakeFiles/clouddb_cloudstone.dir/schema.cc.o"
  "CMakeFiles/clouddb_cloudstone.dir/schema.cc.o.d"
  "libclouddb_cloudstone.a"
  "libclouddb_cloudstone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clouddb_cloudstone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
