file(REMOVE_RECURSE
  "libclouddb_cloudstone.a"
)
