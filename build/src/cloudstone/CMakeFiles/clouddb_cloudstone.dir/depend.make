# Empty dependencies file for clouddb_cloudstone.
# This may be replaced when dependencies are built.
