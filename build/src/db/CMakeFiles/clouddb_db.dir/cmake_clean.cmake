file(REMOVE_RECURSE
  "CMakeFiles/clouddb_db.dir/binlog.cc.o"
  "CMakeFiles/clouddb_db.dir/binlog.cc.o.d"
  "CMakeFiles/clouddb_db.dir/database.cc.o"
  "CMakeFiles/clouddb_db.dir/database.cc.o.d"
  "CMakeFiles/clouddb_db.dir/expr_eval.cc.o"
  "CMakeFiles/clouddb_db.dir/expr_eval.cc.o.d"
  "CMakeFiles/clouddb_db.dir/functions.cc.o"
  "CMakeFiles/clouddb_db.dir/functions.cc.o.d"
  "CMakeFiles/clouddb_db.dir/schema.cc.o"
  "CMakeFiles/clouddb_db.dir/schema.cc.o.d"
  "CMakeFiles/clouddb_db.dir/sql_ast.cc.o"
  "CMakeFiles/clouddb_db.dir/sql_ast.cc.o.d"
  "CMakeFiles/clouddb_db.dir/sql_lexer.cc.o"
  "CMakeFiles/clouddb_db.dir/sql_lexer.cc.o.d"
  "CMakeFiles/clouddb_db.dir/sql_parser.cc.o"
  "CMakeFiles/clouddb_db.dir/sql_parser.cc.o.d"
  "CMakeFiles/clouddb_db.dir/table.cc.o"
  "CMakeFiles/clouddb_db.dir/table.cc.o.d"
  "CMakeFiles/clouddb_db.dir/transaction.cc.o"
  "CMakeFiles/clouddb_db.dir/transaction.cc.o.d"
  "CMakeFiles/clouddb_db.dir/value.cc.o"
  "CMakeFiles/clouddb_db.dir/value.cc.o.d"
  "libclouddb_db.a"
  "libclouddb_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clouddb_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
