file(REMOVE_RECURSE
  "libclouddb_db.a"
)
