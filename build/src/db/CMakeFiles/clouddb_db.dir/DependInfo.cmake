
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/binlog.cc" "src/db/CMakeFiles/clouddb_db.dir/binlog.cc.o" "gcc" "src/db/CMakeFiles/clouddb_db.dir/binlog.cc.o.d"
  "/root/repo/src/db/database.cc" "src/db/CMakeFiles/clouddb_db.dir/database.cc.o" "gcc" "src/db/CMakeFiles/clouddb_db.dir/database.cc.o.d"
  "/root/repo/src/db/expr_eval.cc" "src/db/CMakeFiles/clouddb_db.dir/expr_eval.cc.o" "gcc" "src/db/CMakeFiles/clouddb_db.dir/expr_eval.cc.o.d"
  "/root/repo/src/db/functions.cc" "src/db/CMakeFiles/clouddb_db.dir/functions.cc.o" "gcc" "src/db/CMakeFiles/clouddb_db.dir/functions.cc.o.d"
  "/root/repo/src/db/schema.cc" "src/db/CMakeFiles/clouddb_db.dir/schema.cc.o" "gcc" "src/db/CMakeFiles/clouddb_db.dir/schema.cc.o.d"
  "/root/repo/src/db/sql_ast.cc" "src/db/CMakeFiles/clouddb_db.dir/sql_ast.cc.o" "gcc" "src/db/CMakeFiles/clouddb_db.dir/sql_ast.cc.o.d"
  "/root/repo/src/db/sql_lexer.cc" "src/db/CMakeFiles/clouddb_db.dir/sql_lexer.cc.o" "gcc" "src/db/CMakeFiles/clouddb_db.dir/sql_lexer.cc.o.d"
  "/root/repo/src/db/sql_parser.cc" "src/db/CMakeFiles/clouddb_db.dir/sql_parser.cc.o" "gcc" "src/db/CMakeFiles/clouddb_db.dir/sql_parser.cc.o.d"
  "/root/repo/src/db/table.cc" "src/db/CMakeFiles/clouddb_db.dir/table.cc.o" "gcc" "src/db/CMakeFiles/clouddb_db.dir/table.cc.o.d"
  "/root/repo/src/db/transaction.cc" "src/db/CMakeFiles/clouddb_db.dir/transaction.cc.o" "gcc" "src/db/CMakeFiles/clouddb_db.dir/transaction.cc.o.d"
  "/root/repo/src/db/value.cc" "src/db/CMakeFiles/clouddb_db.dir/value.cc.o" "gcc" "src/db/CMakeFiles/clouddb_db.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/clouddb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
