# Empty compiler generated dependencies file for clouddb_db.
# This may be replaced when dependencies are built.
