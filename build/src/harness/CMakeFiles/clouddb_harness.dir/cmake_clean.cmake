file(REMOVE_RECURSE
  "CMakeFiles/clouddb_harness.dir/experiment.cc.o"
  "CMakeFiles/clouddb_harness.dir/experiment.cc.o.d"
  "CMakeFiles/clouddb_harness.dir/sweep.cc.o"
  "CMakeFiles/clouddb_harness.dir/sweep.cc.o.d"
  "libclouddb_harness.a"
  "libclouddb_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clouddb_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
