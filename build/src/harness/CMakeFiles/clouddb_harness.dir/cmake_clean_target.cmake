file(REMOVE_RECURSE
  "libclouddb_harness.a"
)
