# Empty dependencies file for clouddb_harness.
# This may be replaced when dependencies are built.
