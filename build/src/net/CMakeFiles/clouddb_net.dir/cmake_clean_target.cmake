file(REMOVE_RECURSE
  "libclouddb_net.a"
)
