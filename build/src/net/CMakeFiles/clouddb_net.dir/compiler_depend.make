# Empty compiler generated dependencies file for clouddb_net.
# This may be replaced when dependencies are built.
