file(REMOVE_RECURSE
  "CMakeFiles/clouddb_net.dir/network.cc.o"
  "CMakeFiles/clouddb_net.dir/network.cc.o.d"
  "libclouddb_net.a"
  "libclouddb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clouddb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
