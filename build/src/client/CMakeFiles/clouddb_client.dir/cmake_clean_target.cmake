file(REMOVE_RECURSE
  "libclouddb_client.a"
)
