# Empty dependencies file for clouddb_client.
# This may be replaced when dependencies are built.
