file(REMOVE_RECURSE
  "CMakeFiles/clouddb_client.dir/connection.cc.o"
  "CMakeFiles/clouddb_client.dir/connection.cc.o.d"
  "CMakeFiles/clouddb_client.dir/connection_pool.cc.o"
  "CMakeFiles/clouddb_client.dir/connection_pool.cc.o.d"
  "CMakeFiles/clouddb_client.dir/rw_split_proxy.cc.o"
  "CMakeFiles/clouddb_client.dir/rw_split_proxy.cc.o.d"
  "libclouddb_client.a"
  "libclouddb_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clouddb_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
