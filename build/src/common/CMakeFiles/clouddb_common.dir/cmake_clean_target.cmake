file(REMOVE_RECURSE
  "libclouddb_common.a"
)
