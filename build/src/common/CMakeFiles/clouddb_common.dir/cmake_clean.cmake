file(REMOVE_RECURSE
  "CMakeFiles/clouddb_common.dir/rng.cc.o"
  "CMakeFiles/clouddb_common.dir/rng.cc.o.d"
  "CMakeFiles/clouddb_common.dir/stats.cc.o"
  "CMakeFiles/clouddb_common.dir/stats.cc.o.d"
  "CMakeFiles/clouddb_common.dir/status.cc.o"
  "CMakeFiles/clouddb_common.dir/status.cc.o.d"
  "CMakeFiles/clouddb_common.dir/str_util.cc.o"
  "CMakeFiles/clouddb_common.dir/str_util.cc.o.d"
  "CMakeFiles/clouddb_common.dir/table_writer.cc.o"
  "CMakeFiles/clouddb_common.dir/table_writer.cc.o.d"
  "CMakeFiles/clouddb_common.dir/time_types.cc.o"
  "CMakeFiles/clouddb_common.dir/time_types.cc.o.d"
  "libclouddb_common.a"
  "libclouddb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clouddb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
