# Empty compiler generated dependencies file for clouddb_common.
# This may be replaced when dependencies are built.
