file(REMOVE_RECURSE
  "CMakeFiles/clouddb_repl.dir/cluster_monitor.cc.o"
  "CMakeFiles/clouddb_repl.dir/cluster_monitor.cc.o.d"
  "CMakeFiles/clouddb_repl.dir/cost_model.cc.o"
  "CMakeFiles/clouddb_repl.dir/cost_model.cc.o.d"
  "CMakeFiles/clouddb_repl.dir/db_node.cc.o"
  "CMakeFiles/clouddb_repl.dir/db_node.cc.o.d"
  "CMakeFiles/clouddb_repl.dir/delay_monitor.cc.o"
  "CMakeFiles/clouddb_repl.dir/delay_monitor.cc.o.d"
  "CMakeFiles/clouddb_repl.dir/failover.cc.o"
  "CMakeFiles/clouddb_repl.dir/failover.cc.o.d"
  "CMakeFiles/clouddb_repl.dir/heartbeat.cc.o"
  "CMakeFiles/clouddb_repl.dir/heartbeat.cc.o.d"
  "CMakeFiles/clouddb_repl.dir/master_node.cc.o"
  "CMakeFiles/clouddb_repl.dir/master_node.cc.o.d"
  "CMakeFiles/clouddb_repl.dir/replication_cluster.cc.o"
  "CMakeFiles/clouddb_repl.dir/replication_cluster.cc.o.d"
  "CMakeFiles/clouddb_repl.dir/slave_node.cc.o"
  "CMakeFiles/clouddb_repl.dir/slave_node.cc.o.d"
  "libclouddb_repl.a"
  "libclouddb_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clouddb_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
