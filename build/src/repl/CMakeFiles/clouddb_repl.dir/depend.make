# Empty dependencies file for clouddb_repl.
# This may be replaced when dependencies are built.
