file(REMOVE_RECURSE
  "libclouddb_repl.a"
)
