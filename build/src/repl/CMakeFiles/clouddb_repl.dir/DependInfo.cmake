
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/repl/cluster_monitor.cc" "src/repl/CMakeFiles/clouddb_repl.dir/cluster_monitor.cc.o" "gcc" "src/repl/CMakeFiles/clouddb_repl.dir/cluster_monitor.cc.o.d"
  "/root/repo/src/repl/cost_model.cc" "src/repl/CMakeFiles/clouddb_repl.dir/cost_model.cc.o" "gcc" "src/repl/CMakeFiles/clouddb_repl.dir/cost_model.cc.o.d"
  "/root/repo/src/repl/db_node.cc" "src/repl/CMakeFiles/clouddb_repl.dir/db_node.cc.o" "gcc" "src/repl/CMakeFiles/clouddb_repl.dir/db_node.cc.o.d"
  "/root/repo/src/repl/delay_monitor.cc" "src/repl/CMakeFiles/clouddb_repl.dir/delay_monitor.cc.o" "gcc" "src/repl/CMakeFiles/clouddb_repl.dir/delay_monitor.cc.o.d"
  "/root/repo/src/repl/failover.cc" "src/repl/CMakeFiles/clouddb_repl.dir/failover.cc.o" "gcc" "src/repl/CMakeFiles/clouddb_repl.dir/failover.cc.o.d"
  "/root/repo/src/repl/heartbeat.cc" "src/repl/CMakeFiles/clouddb_repl.dir/heartbeat.cc.o" "gcc" "src/repl/CMakeFiles/clouddb_repl.dir/heartbeat.cc.o.d"
  "/root/repo/src/repl/master_node.cc" "src/repl/CMakeFiles/clouddb_repl.dir/master_node.cc.o" "gcc" "src/repl/CMakeFiles/clouddb_repl.dir/master_node.cc.o.d"
  "/root/repo/src/repl/replication_cluster.cc" "src/repl/CMakeFiles/clouddb_repl.dir/replication_cluster.cc.o" "gcc" "src/repl/CMakeFiles/clouddb_repl.dir/replication_cluster.cc.o.d"
  "/root/repo/src/repl/slave_node.cc" "src/repl/CMakeFiles/clouddb_repl.dir/slave_node.cc.o" "gcc" "src/repl/CMakeFiles/clouddb_repl.dir/slave_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/clouddb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/clouddb_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/clouddb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/clouddb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/clouddb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
