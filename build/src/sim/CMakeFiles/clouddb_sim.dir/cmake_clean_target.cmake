file(REMOVE_RECURSE
  "libclouddb_sim.a"
)
