# Empty compiler generated dependencies file for clouddb_sim.
# This may be replaced when dependencies are built.
