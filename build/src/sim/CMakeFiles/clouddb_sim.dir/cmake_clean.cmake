file(REMOVE_RECURSE
  "CMakeFiles/clouddb_sim.dir/cpu_scheduler.cc.o"
  "CMakeFiles/clouddb_sim.dir/cpu_scheduler.cc.o.d"
  "CMakeFiles/clouddb_sim.dir/simulation.cc.o"
  "CMakeFiles/clouddb_sim.dir/simulation.cc.o.d"
  "libclouddb_sim.a"
  "libclouddb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clouddb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
