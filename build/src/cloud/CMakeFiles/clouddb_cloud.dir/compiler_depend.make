# Empty compiler generated dependencies file for clouddb_cloud.
# This may be replaced when dependencies are built.
