
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/cloud_provider.cc" "src/cloud/CMakeFiles/clouddb_cloud.dir/cloud_provider.cc.o" "gcc" "src/cloud/CMakeFiles/clouddb_cloud.dir/cloud_provider.cc.o.d"
  "/root/repo/src/cloud/ntp.cc" "src/cloud/CMakeFiles/clouddb_cloud.dir/ntp.cc.o" "gcc" "src/cloud/CMakeFiles/clouddb_cloud.dir/ntp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/clouddb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/clouddb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/clouddb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
