file(REMOVE_RECURSE
  "libclouddb_cloud.a"
)
