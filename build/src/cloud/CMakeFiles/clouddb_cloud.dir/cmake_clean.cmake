file(REMOVE_RECURSE
  "CMakeFiles/clouddb_cloud.dir/cloud_provider.cc.o"
  "CMakeFiles/clouddb_cloud.dir/cloud_provider.cc.o.d"
  "CMakeFiles/clouddb_cloud.dir/ntp.cc.o"
  "CMakeFiles/clouddb_cloud.dir/ntp.cc.o.d"
  "libclouddb_cloud.a"
  "libclouddb_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clouddb_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
