# Empty dependencies file for planner_equivalence_test.
# This may be replaced when dependencies are built.
