file(REMOVE_RECURSE
  "CMakeFiles/planner_equivalence_test.dir/db/planner_equivalence_test.cc.o"
  "CMakeFiles/planner_equivalence_test.dir/db/planner_equivalence_test.cc.o.d"
  "planner_equivalence_test"
  "planner_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
