# Empty compiler generated dependencies file for time_types_test.
# This may be replaced when dependencies are built.
