file(REMOVE_RECURSE
  "CMakeFiles/time_types_test.dir/common/time_types_test.cc.o"
  "CMakeFiles/time_types_test.dir/common/time_types_test.cc.o.d"
  "time_types_test"
  "time_types_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
