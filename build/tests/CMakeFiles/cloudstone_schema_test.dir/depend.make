# Empty dependencies file for cloudstone_schema_test.
# This may be replaced when dependencies are built.
