file(REMOVE_RECURSE
  "CMakeFiles/cloudstone_schema_test.dir/cloudstone/schema_test.cc.o"
  "CMakeFiles/cloudstone_schema_test.dir/cloudstone/schema_test.cc.o.d"
  "cloudstone_schema_test"
  "cloudstone_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudstone_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
