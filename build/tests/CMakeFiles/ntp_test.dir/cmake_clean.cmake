file(REMOVE_RECURSE
  "CMakeFiles/ntp_test.dir/cloud/ntp_test.cc.o"
  "CMakeFiles/ntp_test.dir/cloud/ntp_test.cc.o.d"
  "ntp_test"
  "ntp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
