# Empty dependencies file for cloud_provider_test.
# This may be replaced when dependencies are built.
