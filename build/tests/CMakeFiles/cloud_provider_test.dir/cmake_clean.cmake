file(REMOVE_RECURSE
  "CMakeFiles/cloud_provider_test.dir/cloud/cloud_provider_test.cc.o"
  "CMakeFiles/cloud_provider_test.dir/cloud/cloud_provider_test.cc.o.d"
  "cloud_provider_test"
  "cloud_provider_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_provider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
