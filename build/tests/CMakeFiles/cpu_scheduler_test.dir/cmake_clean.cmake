file(REMOVE_RECURSE
  "CMakeFiles/cpu_scheduler_test.dir/sim/cpu_scheduler_test.cc.o"
  "CMakeFiles/cpu_scheduler_test.dir/sim/cpu_scheduler_test.cc.o.d"
  "cpu_scheduler_test"
  "cpu_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
