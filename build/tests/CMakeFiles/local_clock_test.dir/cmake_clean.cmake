file(REMOVE_RECURSE
  "CMakeFiles/local_clock_test.dir/sim/local_clock_test.cc.o"
  "CMakeFiles/local_clock_test.dir/sim/local_clock_test.cc.o.d"
  "local_clock_test"
  "local_clock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
