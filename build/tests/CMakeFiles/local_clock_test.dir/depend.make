# Empty dependencies file for local_clock_test.
# This may be replaced when dependencies are built.
