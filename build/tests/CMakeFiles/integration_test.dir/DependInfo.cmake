
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/repl/integration_test.cc" "tests/CMakeFiles/integration_test.dir/repl/integration_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/repl/integration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/clouddb_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/cloudstone/CMakeFiles/clouddb_cloudstone.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/clouddb_client.dir/DependInfo.cmake"
  "/root/repo/build/src/repl/CMakeFiles/clouddb_repl.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/clouddb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/clouddb_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/clouddb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/clouddb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/clouddb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
