# Empty compiler generated dependencies file for rw_split_proxy_test.
# This may be replaced when dependencies are built.
