file(REMOVE_RECURSE
  "CMakeFiles/rw_split_proxy_test.dir/client/rw_split_proxy_test.cc.o"
  "CMakeFiles/rw_split_proxy_test.dir/client/rw_split_proxy_test.cc.o.d"
  "rw_split_proxy_test"
  "rw_split_proxy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_split_proxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
