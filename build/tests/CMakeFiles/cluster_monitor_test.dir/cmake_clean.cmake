file(REMOVE_RECURSE
  "CMakeFiles/cluster_monitor_test.dir/repl/cluster_monitor_test.cc.o"
  "CMakeFiles/cluster_monitor_test.dir/repl/cluster_monitor_test.cc.o.d"
  "cluster_monitor_test"
  "cluster_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
